"""MicroBatcher: coalescing, deadlines, error fan-out, occupancy metrics."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.guard import AdmissionRejected
from repro.obs import use_observability
from repro.perf import MicroBatchConfig, MicroBatcher
from repro.resilience import Deadline


def doubler(items):
    return [item * 2 for item in items]


class TestConfig:
    def test_defaults(self):
        config = MicroBatchConfig()
        assert config.max_batch >= 1 and config.max_wait_ms >= 0

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0}, {"max_batch": -1}, {"max_wait_ms": -0.5},
        {"max_batch": 4, "max_queue": 3},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            MicroBatchConfig(**kwargs)


class TestCoalescing:
    def test_single_request_flushes_after_wait(self):
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=8, max_wait_ms=1.0)
        )
        assert batcher.submit(21) == 42
        assert batcher.batches == 1 and batcher.batched_requests == 1

    def test_full_batch_flushes_immediately(self):
        sizes = []

        def execute(items):
            sizes.append(len(items))
            return doubler(items)

        batcher = MicroBatcher(
            execute, MicroBatchConfig(max_batch=4, max_wait_ms=5000.0)
        )
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(batcher.submit, i) for i in range(4)]
            results = sorted(f.result() for f in futures)
        # Did not sit out the 5s wait: the 4th arrival flushed the batch.
        assert time.perf_counter() - start < 2.0
        assert results == [0, 2, 4, 6]
        assert sizes == [4]

    def test_every_caller_gets_its_own_result(self):
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=8, max_wait_ms=2.0)
        )
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = {
                i: pool.submit(batcher.submit, i) for i in range(24)
            }
            for i, future in futures.items():
                assert future.result() == i * 2
        assert batcher.batched_requests == 24

    def test_zero_wait_disables_pooling(self):
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=8, max_wait_ms=0.0)
        )
        assert batcher.submit(3) == 6
        assert batcher.batches == 1


class TestDeadline:
    def test_deadline_caps_the_wait(self):
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=8, max_wait_ms=10_000.0)
        )
        start = time.perf_counter()
        result = batcher.submit(5, deadline=Deadline(budget_ms=30.0))
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert result == 10
        assert elapsed_ms < 5_000.0  # nowhere near max_wait_ms

    def test_expired_deadline_flushes_immediately(self):
        deadline = Deadline(budget_ms=0.001)
        time.sleep(0.01)
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=8, max_wait_ms=10_000.0)
        )
        assert batcher.submit(1, deadline=deadline) == 2

    def test_expired_deadline_never_waits(self):
        """An already-expired deadline must flush on the spot — with a
        10-minute max_wait the only way this test passes quickly is a
        zero wait budget."""
        expired = Deadline(budget_ms=1.0)
        while not expired.expired:
            time.sleep(0.001)
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=64, max_wait_ms=600_000.0)
        )
        start = time.perf_counter()
        assert batcher.submit(7, deadline=expired) == 14
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert elapsed_ms < 1_000.0
        assert batcher.batches == 1


class TestErrors:
    def test_execute_error_reaches_every_caller(self):
        def explode(items):
            raise RuntimeError("scorer down")

        batcher = MicroBatcher(
            explode, MicroBatchConfig(max_batch=3, max_wait_ms=2.0)
        )
        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [pool.submit(batcher.submit, i) for i in range(3)]
            for future in futures:
                with pytest.raises(RuntimeError, match="scorer down"):
                    future.result()

    def test_wrong_result_count_is_an_error(self):
        batcher = MicroBatcher(
            lambda items: [], MicroBatchConfig(max_batch=1, max_wait_ms=0.0)
        )
        with pytest.raises(RuntimeError, match="0 results"):
            batcher.submit("x")

    def test_batcher_survives_a_failed_batch(self):
        calls = []

        def flaky(items):
            calls.append(len(items))
            if len(calls) == 1:
                raise ValueError("first batch dies")
            return doubler(items)

        batcher = MicroBatcher(
            flaky, MicroBatchConfig(max_batch=1, max_wait_ms=0.0)
        )
        with pytest.raises(ValueError):
            batcher.submit(1)
        assert batcher.submit(2) == 4


class TestObservability:
    def test_occupancy_counters(self):
        with use_observability() as (registry, _tracer):
            batcher = MicroBatcher(
                doubler, MicroBatchConfig(max_batch=3, max_wait_ms=2.0)
            )
            with ThreadPoolExecutor(max_workers=3) as pool:
                futures = [pool.submit(batcher.submit, i) for i in range(6)]
                for future in futures:
                    future.result()
            assert registry.counter("perf.microbatch.requests").value == 6
            assert registry.counter("perf.microbatch.batches").value >= 2
            occupancy = registry.histogram("perf.microbatch.occupancy")
            assert 1 <= occupancy.max <= 3


class TestBoundedQueue:
    def test_full_batcher_rejects_with_typed_error(self):
        release = threading.Event()
        entered = threading.Event()

        def blocking_execute(items):
            entered.set()
            release.wait(5.0)
            return doubler(items)

        batcher = MicroBatcher(
            blocking_execute,
            MicroBatchConfig(max_batch=2, max_wait_ms=10_000.0, max_queue=2),
        )
        with ThreadPoolExecutor(max_workers=2) as pool:
            # A full batch flushes and blocks inside the slow model —
            # those two requests still occupy the bounded capacity.
            first = [pool.submit(batcher.submit, i) for i in range(2)]
            assert entered.wait(5.0)
            assert batcher.in_flight == 2
            with pytest.raises(AdmissionRejected) as excinfo:
                batcher.submit(99)
            assert excinfo.value.site == "perf.microbatch"
            assert excinfo.value.reason == "queue_full"
            release.set()
            assert sorted(f.result() for f in first) == [0, 2]
        assert batcher.in_flight == 0        # capacity freed on completion

    def test_unbounded_by_default(self):
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=4, max_wait_ms=1.0)
        )
        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = [pool.submit(batcher.submit, i) for i in range(32)]
            assert sorted(f.result() for f in futures) == [
                i * 2 for i in range(32)
            ]

    def test_flush_drains_the_pool(self):
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=8, max_wait_ms=10_000.0)
        )
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(batcher.submit, i) for i in (1, 2)]
            while batcher.queue_depth < 2:
                time.sleep(0.001)
            # Without the flush these two would idle out the 10s wait.
            assert batcher.flush() == 2
            assert sorted(f.result() for f in futures) == [2, 4]
        assert batcher.flush() == 0          # empty pool is a no-op


class TestConcurrencySafety:
    def test_stats_exact_under_concurrent_flushes(self):
        """Satellite regression: ``batches``/``batched_requests`` used to
        be updated outside the lock, so concurrent flushing threads lost
        increments.  With max_wait 0 every submit flushes its own batch
        — the counters must come out exact, not approximately right."""
        batcher = MicroBatcher(
            doubler, MicroBatchConfig(max_batch=1, max_wait_ms=0.0)
        )
        total = 400
        with ThreadPoolExecutor(max_workers=16) as pool:
            list(pool.map(batcher.submit, range(total)))
        assert batcher.batches == total
        assert batcher.batched_requests == total

    def test_no_request_lost_under_contention(self):
        """Hammer the batcher from many threads; every item must come
        back exactly once with its own answer."""
        barrier = threading.Barrier(8)

        def execute(items):
            return [item + 1000 for item in items]

        batcher = MicroBatcher(
            execute, MicroBatchConfig(max_batch=4, max_wait_ms=1.0)
        )

        def client(value):
            barrier.wait()
            return batcher.submit(value)

        with ThreadPoolExecutor(max_workers=8) as pool:
            futures = {i: pool.submit(client, i) for i in range(8)}
            results = {i: f.result() for i, f in futures.items()}
        assert results == {i: i + 1000 for i in range(8)}
        assert batcher.batched_requests == 8
