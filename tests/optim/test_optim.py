"""Adam and SGD optimizers."""

import numpy as np
import pytest

from repro.nn import Linear, Parameter
from repro.optim import Adam, SGD
from repro.tensor import Tensor, functional as F


def _quadratic_minimisation(optimizer_factory, steps=300):
    """Minimise ||x - target||^2 and return the final distance."""
    target = np.array([1.0, -2.0, 0.5])
    param = Parameter(np.zeros(3))
    optimizer = optimizer_factory([param])
    for _ in range(steps):
        optimizer.zero_grad()
        loss = ((param - target) ** 2).sum()
        loss.backward()
        optimizer.step()
    return float(np.abs(param.data - target).max())


class TestAdam:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_converges_on_quadratic(self):
        assert _quadratic_minimisation(lambda p: Adam(p, lr=0.05)) < 1e-3

    def test_skips_parameters_without_grad(self):
        a, b = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = Adam([a, b], lr=0.1)
        (a.sum() * 2.0).backward()
        opt.step()
        np.testing.assert_allclose(b.data, np.ones(2))
        assert not np.allclose(a.data, np.ones(2))

    def test_grad_clipping_limits_update(self):
        param = Parameter(np.zeros(4))
        opt = Adam([param], lr=0.1, grad_clip=1.0)
        param.grad = np.full(4, 1e6)
        opt.step()
        # With clipping the effective gradient norm is 1; Adam still takes
        # a bounded ~lr-sized step.
        assert np.abs(param.data).max() <= 0.11

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.ones(3) * 10)
        opt = Adam([param], lr=0.1, weight_decay=1.0)
        for _ in range(50):
            param.grad = np.zeros(3)
            opt.step()
        assert np.abs(param.data).max() < 10.0

    def test_trains_logistic_regression(self, rng):
        X = rng.normal(size=(128, 4))
        y = (X @ np.array([1.0, -2.0, 0.5, 0.0]) > 0).astype(float)
        layer = Linear(4, 1, rng)
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            loss = F.binary_cross_entropy_with_logits(
                layer(Tensor(X)).squeeze(-1), y
            )
            loss.backward()
            opt.step()
        assert loss.item() < 0.3


class TestSGD:
    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError):
            SGD([])

    def test_converges_on_quadratic(self):
        assert _quadratic_minimisation(lambda p: SGD(p, lr=0.05)) < 1e-3

    def test_momentum_accelerates(self):
        slow = _quadratic_minimisation(lambda p: SGD(p, lr=0.01), steps=60)
        fast = _quadratic_minimisation(
            lambda p: SGD(p, lr=0.01, momentum=0.9), steps=60
        )
        assert fast < slow
