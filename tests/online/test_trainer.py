"""IncrementalTrainer: holdout routing, scoped SGD, gated publishing."""

from __future__ import annotations

import numpy as np
import pytest

from itertools import cycle

from repro.core import build_odnet
from repro.data.schema import ODPair
from repro.online import (
    IncrementalTrainer,
    OnlineTrainerConfig,
    ShadowEvaluator,
)

from .conftest import ONLINE_MODEL_CONFIG, booking_events

_USER_PARAMS = (
    "origin_hsgc.user_embedding.weight",
    "dest_hsgc.user_embedding.weight",
)


def _trainer(model, od_dataset, features, store, margin=0.0, **overrides):
    kwargs = dict(
        lr=0.05, batch_events=4, negatives_per_event=3,
        publish_every_steps=2, holdout_every=3, seed=0,
    )
    kwargs.update(overrides)
    shadow = ShadowEvaluator(
        od_dataset, features, window=16, min_window=3, margin=margin,
        seed=0,
    )
    return IncrementalTrainer(
        model, od_dataset, features, store,
        OnlineTrainerConfig(**kwargs), shadow=shadow,
    )


@pytest.fixture()
def trainer(online_model, od_dataset, features, store):
    return _trainer(online_model, od_dataset, features, store)


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"update_mode": "everything"}, {"batch_events": 0},
        {"negatives_per_event": 0}, {"publish_every_steps": 0},
        {"holdout_every": 1},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            OnlineTrainerConfig(**kwargs)


class TestIngestion:
    def test_every_nth_booking_is_held_out(self, trainer, od_dataset):
        events = booking_events(od_dataset, 9)
        buffered = trainer.consume(events)
        assert trainer.events_seen == 9
        assert trainer.events_held_out == 3     # holdout_every=3
        assert buffered == trainer.backlog == 6
        assert len(trainer.shadow) == 3

    def test_clicks_are_ignored_as_labels(self, trainer, od_dataset):
        from repro.data.schema import ClickEvent

        trainer.consume([
            ClickEvent(user_id=0, origin=0, destination=1, day=5)
        ])
        assert trainer.events_seen == 0
        assert trainer.backlog == 0


class TestStep:
    def test_step_consumes_backlog_and_returns_loss(self, trainer,
                                                    od_dataset):
        trainer.consume(booking_events(od_dataset, 5))
        backlog = trainer.backlog
        loss = trainer.step()
        assert loss is not None and np.isfinite(loss)
        assert trainer.steps == 1
        assert trainer.backlog == backlog - 4   # batch_events=4
        assert trainer.last_loss == loss

    def test_step_without_backlog_is_a_noop(self, trainer):
        assert trainer.step() is None
        assert trainer.steps == 0

    def test_user_mode_touches_only_user_rows(self, online_model,
                                              od_dataset, features, store):
        trainer = _trainer(online_model, od_dataset, features, store)
        before = online_model.state_dict()
        events = booking_events(od_dataset, 4)
        trainer.consume(events)
        trained_events = [
            e for i, e in enumerate(events, start=1) if i % 3 != 0
        ][:4]
        trainer.step()
        after = online_model.state_dict()
        touched = set(trainer.touched_users)
        assert touched == {e.user_id for e in trained_events}
        for name in before:
            if name in _USER_PARAMS:
                rows_moved = {
                    int(row) for row in
                    np.nonzero(
                        np.abs(after[name] - before[name]).sum(axis=1)
                    )[0]
                }
                # Algorithm 1: a user's row depends only on its own
                # embedding — exactly the trained users moved.
                assert rows_moved, f"{name} never moved"
                assert rows_moved <= touched
            else:
                # Everything outside the two user tables is untouched,
                # bit for bit.
                np.testing.assert_array_equal(
                    after[name], before[name], err_msg=name
                )


class TestPublishing:
    def test_baseline_publish_is_ungated(self, trainer, store):
        info = trainer.publish_baseline()
        assert info.version == 1
        assert store.current_version() == 1
        snapshot = store.load()
        assert snapshot.metadata["bootstrap"] is True
        assert trainer.publishes == 1

    def test_cadence_defers_until_enough_steps(self, trainer, od_dataset):
        trainer.publish_baseline()
        trainer.consume(booking_events(od_dataset, 5))
        trainer.step()
        info, decision = trainer.maybe_publish()   # 1 < publish_every=2
        assert info is None and decision is None

    def test_window_deferral_keeps_cadence_armed(self, trainer,
                                                 od_dataset, store):
        trainer.publish_baseline()
        trainer.consume(booking_events(od_dataset, 5))  # 1 holdout only
        trainer.step()
        info, decision = trainer.maybe_publish(force=True)
        assert info is None
        assert decision.reason == "window"
        # Deferred, not rejected: the very next attempt still decides.
        info, decision = trainer.maybe_publish(force=True)
        assert decision is not None and decision.reason == "window"
        assert store.current_version() == 1

    def test_rejection_resets_cadence(self, online_model, od_dataset,
                                      features, store):
        # An impossible margin: every candidate is rejected.
        trainer = _trainer(
            online_model, od_dataset, features, store, margin=10.0
        )
        trainer.publish_baseline()
        trainer.consume(booking_events(od_dataset, 12))
        while trainer.backlog:
            trainer.step()
        assert trainer.shadow.ready
        info, decision = trainer.maybe_publish()
        assert info is None
        assert decision.reason == "rejected"
        assert trainer.rejections == 1
        assert store.current_version() == 1
        # The cadence was reset — no immediate re-attempt.
        info, decision = trainer.maybe_publish()
        assert info is None and decision is None

    def test_promotion_publishes_touched_users(self, online_model,
                                               od_dataset, features, store):
        trainer = _trainer(
            online_model, od_dataset, features, store, margin=-1.0
        )
        trainer.publish_baseline()
        trainer.consume(booking_events(od_dataset, 12))
        while trainer.backlog:
            trainer.step()
        touched = trainer.touched_users
        info, decision = trainer.maybe_publish()
        assert info is not None and info.version == 2
        assert decision.reason == "promoted"
        snapshot = store.load()
        assert snapshot.metadata["mode"] == "user"
        assert sorted(snapshot.metadata["touched_users"]) == touched
        assert snapshot.metadata["shadow"]["window"] == len(trainer.shadow)
        # The reference (gate's serving side) moved to the new weights,
        # and the exact touched set reset with momentum=0.
        np.testing.assert_array_equal(
            trainer.reference.state_dict()[_USER_PARAMS[0]],
            snapshot.state[_USER_PARAMS[0]],
        )
        assert trainer.touched_users == []

    def test_first_forced_publish_bootstraps(self, trainer, store):
        info, decision = trainer.maybe_publish(force=True)
        assert info is not None and info.version == 1
        assert decision is None
        assert store.load().metadata["bootstrap"] is True


class TestStepBounds:
    def test_step_terminates_when_world_has_few_pairs(
            self, online_model, od_dataset, features, store, monkeypatch):
        trainer = _trainer(online_model, od_dataset, features, store)
        events = booking_events(od_dataset, 2)
        # A degenerate sampler with only two distinct pairs can never
        # satisfy negatives_per_event=3 — pre-bound this spun forever.
        pairs = cycle([ODPair(0, 1), ODPair(1, 0)])
        monkeypatch.setattr(
            od_dataset, "_sample_distractor", lambda target, rng: next(pairs)
        )
        trainer.consume(events)
        loss = trainer.step()
        assert loss is not None and np.isfinite(loss)
        assert trainer.steps == 1


class TestAttach:
    def test_attach_to_non_empty_store_boots_from_published(
            self, online_model, od_dataset, features, store):
        trainer = _trainer(
            online_model, od_dataset, features, store, margin=-1.0
        )
        trainer.publish_baseline()
        trainer.consume(booking_events(od_dataset, 12))
        while trainer.backlog:
            trainer.step()
        info, _ = trainer.maybe_publish(force=True)
        assert info is not None
        published = store.load().state

        # A brand-new trainer attached to the same store (a redeployed
        # trainer process) must train and gate from the *serving*
        # snapshot, not from its constructor's seed weights.
        fresh = _trainer(
            build_odnet(od_dataset, ONLINE_MODEL_CONFIG),
            od_dataset, features, store,
        )
        for name, value in fresh.model.state_dict().items():
            np.testing.assert_array_equal(
                value, published[name], err_msg=name
            )
        for name, value in fresh.reference.state_dict().items():
            np.testing.assert_array_equal(
                value, published[name], err_msg=name
            )


class TestRestart:
    def test_restart_boots_from_published_snapshot(self, online_model,
                                                   od_dataset, features,
                                                   store):
        trainer = _trainer(
            online_model, od_dataset, features, store, margin=-1.0
        )
        trainer.publish_baseline()
        trainer.consume(booking_events(od_dataset, 12))
        while trainer.backlog:
            trainer.step()
        trainer.maybe_publish(force=True)
        published = store.load().state
        # Keep training past the publish, with a pending buffer.
        trainer.consume(booking_events(od_dataset, 9))
        trainer.step()
        pending = trainer.backlog
        assert pending > 0
        for name in _USER_PARAMS:
            assert not np.array_equal(
                online_model.state_dict()[name], published[name]
            )

        trainer.restart()

        # The replacement is exactly on the shadow-approved weights; the
        # in-flight buffer died with the old process.
        for name, value in online_model.state_dict().items():
            np.testing.assert_array_equal(value, published[name],
                                          err_msg=name)
        assert trainer.events_lost == pending
        assert trainer.backlog == 0
        assert trainer.touched_users == []
        assert trainer.restarts == 1

    def test_restart_with_empty_store_keeps_weights(self, trainer,
                                                    online_model):
        before = online_model.state_dict()
        trainer.restart()
        for name, value in online_model.state_dict().items():
            np.testing.assert_array_equal(value, before[name])
        assert trainer.restarts == 1
