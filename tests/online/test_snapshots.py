"""SnapshotStore: two-phase publish stays consistent at every crash site."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.online import SnapshotError, SnapshotStore
from repro.online.drill import PUBLISH_STAGES
from repro.resilience.chaos import FaultInjector, use_fault_injector
from repro.resilience.errors import InjectedFault


def _state(value: float) -> dict[str, np.ndarray]:
    return {
        "w": np.full((3, 2), value, dtype=np.float64),
        "b": np.arange(4, dtype=np.float64) * value,
    }


class TestRoundTrip:
    def test_publish_then_load(self, store):
        info = store.publish(_state(1.5), {"note": "first"})
        assert info.version == 1
        assert store.current_version() == 1
        snapshot = store.load()
        assert snapshot.version == 1
        np.testing.assert_array_equal(snapshot.state["w"], _state(1.5)["w"])
        np.testing.assert_array_equal(snapshot.state["b"], _state(1.5)["b"])
        assert snapshot.metadata["note"] == "first"
        assert snapshot.metadata["version"] == 1
        assert snapshot.published_unix > 0

    def test_empty_store_reads_as_none(self, store):
        assert store.current() is None
        assert store.current_version() == 0
        with pytest.raises(SnapshotError, match="no snapshot published"):
            store.load()

    def test_missing_version_raises(self, store):
        store.publish(_state(1.0))
        with pytest.raises(SnapshotError, match="v7 not found"):
            store.load(7)

    def test_reserved_meta_key_rejected(self, store):
        state = _state(1.0)
        state["__snapshot_meta__"] = np.zeros(1)
        with pytest.raises(ValueError, match="reserved"):
            store.publish(state)

    def test_mangled_pointer_is_a_typed_failure(self, store):
        store.publish(_state(1.0))
        (store.directory / "CURRENT").write_text("{half a poin")
        with pytest.raises(SnapshotError, match="unreadable"):
            store.current()


class TestVersioning:
    def test_versions_are_monotonic(self, store):
        for i in range(3):
            info = store.publish(_state(float(i)), keep_last=8)
            assert info.version == i + 1
        assert store.versions() == [1, 2, 3]
        assert store.current_version() == 3

    def test_flip_refuses_backwards(self, store):
        store.publish(_state(1.0))
        store.publish(_state(2.0))
        with pytest.raises(SnapshotError, match="backwards"):
            store._flip(1, "v00000001.npz", 0.0)

    def test_orphan_version_never_reused(self, store):
        store.publish(_state(1.0))
        injector = FaultInjector(seed=0).add(
            "online.publish.pre_flip", error_rate=1.0, max_faults=1
        )
        with use_fault_injector(injector):
            with pytest.raises(InjectedFault):
                store.publish(_state(2.0))
        # v2 is durable but unreferenced; the pointer never moved.
        assert store.current_version() == 1
        assert store.versions() == [1, 2]
        # The next publish must not rewrite the orphan's immutable name.
        info = store.publish(_state(3.0))
        assert info.version == 3
        np.testing.assert_array_equal(
            store.load(2).state["w"], _state(2.0)["w"]
        )

    def test_prune_keeps_last_and_current(self, store):
        for i in range(5):
            store.publish(_state(float(i)), keep_last=2)
        assert store.current_version() == 5
        assert store.versions() == [4, 5]
        # The pointer's target always survives pruning.
        store.load()


class TestTouchedUnion:
    def test_single_step_is_the_snapshot_delta(self, store):
        store.publish(_state(1.0), {"touched_users": [1, 2]})
        snapshot = store.load()
        assert store.touched_union(0, snapshot) == [1, 2]

    def test_jump_unions_skipped_deltas(self, store):
        store.publish(_state(1.0), {"touched_users": [1, 2]})
        store.publish(_state(2.0), {"touched_users": [3]})
        store.publish(_state(3.0), {"touched_users": [2, 4]})
        snapshot = store.load()
        assert store.touched_union(1, snapshot) == [2, 3, 4]
        assert store.touched_union(0, snapshot) == [1, 2, 3, 4]

    def test_full_refresh_anywhere_in_the_gap_voids_the_set(self, store):
        store.publish(_state(1.0), {"touched_users": [1]})
        store.publish(_state(2.0), {"touched_users": None})
        store.publish(_state(3.0), {"touched_users": [2]})
        snapshot = store.load()
        assert store.touched_union(0, snapshot) is None
        # No gap: the newest delta alone is exact.
        assert store.touched_union(2, snapshot) == [2]

    def test_pruned_gap_falls_back_to_full_refresh(self, store):
        for i in range(5):
            store.publish(
                _state(float(i)), {"touched_users": [i]}, keep_last=2
            )
        snapshot = store.load()
        assert store.versions() == [4, 5]
        # Versions 1-3 were pruned: their deltas are gone, so a
        # follower jumping over them must refresh every row.
        assert store.touched_union(0, snapshot) is None
        assert store.touched_union(4, snapshot) == [4]


class TestCrashConsistency:
    @pytest.mark.parametrize("stage", PUBLISH_STAGES)
    def test_reader_never_sees_a_torn_store(self, tmp_path, stage):
        store = SnapshotStore(tmp_path / stage)
        baseline = store.publish(_state(1.0))
        injector = FaultInjector(seed=0).add(
            f"online.publish.{stage}", error_rate=1.0, max_faults=1
        )
        with use_fault_injector(injector):
            with pytest.raises(InjectedFault):
                store.publish(_state(2.0))
        info = store.current()
        if stage == "post_flip":
            # The flip already landed — indistinguishable from success.
            assert info.version == baseline.version + 1
            expected = _state(2.0)
        else:
            assert info.version == baseline.version
            expected = _state(1.0)
        # Whatever the pointer says must load cleanly and completely.
        snapshot = store.load()
        np.testing.assert_array_equal(snapshot.state["w"], expected["w"])
        # Publishing still works after the crash.
        after = store.publish(_state(3.0))
        assert after.version > info.version
        np.testing.assert_array_equal(store.load().state["w"], _state(3.0)["w"])

    def test_tmp_files_swept_on_publish_not_on_open(self, tmp_path):
        directory = tmp_path / "s"
        store = SnapshotStore(directory)
        store.publish(_state(1.0))
        stale = directory / "v00000009.abc.tmp"
        stale.write_bytes(b"half a snapshot")
        # Readers never mutate the store: opening one (a worker reload,
        # a follower) must not delete what could be another process's
        # in-flight phase-1 write.
        reopened = SnapshotStore(directory)
        assert stale.exists()
        assert reopened.current_version() == 1
        # The single publisher sweeps orphans on its next publish; the
        # published payload survives (sweep only touches *.tmp).
        store.publish(_state(2.0))
        assert not stale.exists()
        np.testing.assert_array_equal(
            reopened.load().state["w"], _state(2.0)["w"]
        )

    def test_recover_reports_swept_count(self, tmp_path):
        directory = tmp_path / "s"
        store = SnapshotStore(directory)
        (directory / "a.tmp").write_bytes(b"x")
        (directory / "b.tmp").write_bytes(b"y")
        assert store.recover() == 2
        assert store.recover() == 0

    def test_pointer_file_is_plain_json(self, store):
        # Operational contract: the pointer stays a tiny inspectable file.
        info = store.publish(_state(1.0))
        payload = json.loads((store.directory / "CURRENT").read_text())
        assert payload["version"] == info.version
        assert payload["file"] == info.path.name
