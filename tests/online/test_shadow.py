"""ShadowEvaluator: holdout window discipline and the promotion gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_odnet
from repro.data.schema import BookingEvent
from repro.online import ShadowEvaluator

from .conftest import ONLINE_MODEL_CONFIG, booking_events


@pytest.fixture()
def shadow(od_dataset, features):
    return ShadowEvaluator(
        od_dataset, features, window=8, min_window=3, num_candidates=6,
        margin=0.0, seed=0,
    )


def _fill(shadow, od_dataset, count):
    for event in booking_events(od_dataset, count):
        assert shadow.observe(event)


class TestWindow:
    def test_not_ready_below_min_window(self, shadow, od_dataset):
        _fill(shadow, od_dataset, 2)
        assert not shadow.ready
        assert len(shadow) == 2

    def test_window_evicts_oldest(self, shadow, od_dataset):
        _fill(shadow, od_dataset, 12)
        assert len(shadow) == 8
        assert shadow.observed == 12

    def test_unknown_user_is_skipped_not_fatal(self, shadow):
        ghost = BookingEvent(user_id=10_000, origin=0, destination=1,
                             day=40, price=10.0)
        assert not shadow.observe(ghost)
        assert shadow.skipped == 1
        assert len(shadow) == 0

    def test_observe_terminates_when_world_has_few_pairs(
            self, od_dataset, features, monkeypatch):
        from itertools import cycle

        from repro.data.schema import ODPair

        shadow = ShadowEvaluator(
            od_dataset, features, window=8, min_window=3,
            num_candidates=6, seed=0,
        )
        # A degenerate sampler with only two distinct pairs can never
        # fill num_candidates=6 — pre-bound this spun forever.
        pairs = cycle([ODPair(0, 1), ODPair(1, 0)])
        monkeypatch.setattr(
            od_dataset, "_sample_distractor", lambda target, rng: next(pairs)
        )
        event = booking_events(od_dataset, 1)[0]
        assert shadow.observe(event)
        _, candidates = shadow._tasks[0]
        assert 2 <= len(candidates) < 6
        assert ODPair(event.origin, event.destination) in candidates

    def test_rejects_degenerate_config(self, od_dataset, features):
        with pytest.raises(ValueError, match="min_window"):
            ShadowEvaluator(od_dataset, features, min_window=0)
        with pytest.raises(ValueError, match="num_candidates"):
            ShadowEvaluator(od_dataset, features, num_candidates=1)


class TestGate:
    def test_defers_until_window_ready(self, shadow, od_dataset,
                                       online_model):
        _fill(shadow, od_dataset, 2)
        decision = shadow.decide(online_model, online_model)
        assert decision.reason == "window"
        assert not decision.promote
        assert decision.window == 2

    def test_tie_promotes_at_zero_margin(self, shadow, od_dataset,
                                         online_model):
        _fill(shadow, od_dataset, 4)
        decision = shadow.decide(online_model, online_model)
        assert decision.reason == "promoted"
        assert decision.promote
        assert decision.candidate_mrr == decision.serving_mrr
        assert decision.wins == 0 and decision.losses == 0
        assert decision.ties == decision.window == 4

    def test_positive_margin_rejects_tie(self, od_dataset, features,
                                         online_model):
        shadow = ShadowEvaluator(
            od_dataset, features, window=8, min_window=3, margin=0.01,
            seed=0,
        )
        _fill(shadow, od_dataset, 4)
        decision = shadow.decide(online_model, online_model)
        assert decision.reason == "rejected"
        assert not decision.promote

    def test_better_candidate_promotes(self, shadow, od_dataset,
                                       online_model):
        _fill(shadow, od_dataset, 6)
        # Perturb a second replica so the two sides genuinely disagree.
        other = build_odnet(od_dataset, ONLINE_MODEL_CONFIG)
        state = other.state_dict()
        rng = np.random.default_rng(1)
        for name in ("origin_hsgc.user_embedding.weight",
                     "dest_hsgc.user_embedding.weight"):
            state[name] = state[name] + rng.normal(
                0.0, 0.5, state[name].shape
            )
        other.load_state_dict(state)
        first = shadow.decide(online_model, other)
        winner, loser = (
            (online_model, other)
            if first.candidate_mrr >= first.serving_mrr
            else (other, online_model)
        )
        better = shadow.decide(winner, loser)
        assert better.promote
        assert better.candidate_mrr >= better.serving_mrr

    def test_mrr_bounds(self, shadow, od_dataset, online_model):
        assert shadow.mrr(online_model) == 0.0  # empty window
        _fill(shadow, od_dataset, 4)
        assert 0.0 < shadow.mrr(online_model) <= 1.0
