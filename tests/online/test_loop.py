"""OnlineLearningLoop + SnapshotFollower: crash containment, hot-follow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import BookingEvent, ClickEvent
from repro.online import EventBus, OnlineLearningLoop, SnapshotFollower


def _booking(day: int, user: int = 0) -> BookingEvent:
    return BookingEvent(user_id=user, origin=0, destination=2, day=day,
                        price=25.0)


class FakeFeatures:
    def __init__(self):
        self.bookings: list[BookingEvent] = []
        self.clicks: list[ClickEvent] = []

    def record_booking(self, event):
        self.bookings.append(event)

    def record_click(self, event):
        self.clicks.append(event)


class FakeTrainer:
    """Minimal trainer double with a scriptable crash switch."""

    def __init__(self, store):
        self.store = store
        self.fail = False
        self.steps = 0
        self.backlog = 0
        self.events_seen = 0
        self.events_trained = 0
        self.events_held_out = 0
        self.publishes = 0
        self.rejections = 0
        self.restarts = 0
        self.events_lost = 0
        self.consumed: list = []

    def consume(self, events):
        self.consumed.extend(events)
        self.events_seen += len(events)
        self.backlog += len(events)
        return len(events)

    def step(self):
        if self.fail:
            raise RuntimeError("scripted trainer crash")
        taken = self.backlog
        self.backlog = 0
        self.steps += 1
        self.events_trained += taken
        return 0.5

    def maybe_publish(self, force=False):
        return None, None

    def restart(self):
        self.events_lost += self.backlog
        self.backlog = 0
        self.restarts += 1


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clock():
    return _Clock()


def _loop(store, clock, budget=2, followers=()):
    bus = EventBus()
    features = FakeFeatures()
    trainer = FakeTrainer(store)
    loop = OnlineLearningLoop(
        bus, features, trainer, followers,
        restart_budget=budget, restart_backoff_s=0.1,
        restart_backoff_max_s=1.0, time_source=clock,
    )
    return bus, features, trainer, loop


class TestHealthyTicks:
    def test_events_fan_out_to_features_and_trainer(self, store, clock):
        bus, features, trainer, loop = _loop(store, clock)
        bus.publish(ClickEvent(user_id=0, origin=0, destination=2, day=1))
        bus.publish(_booking(2))
        result = loop.tick()
        assert result["ingested"] == 2
        assert [e.day for e in features.clicks] == [1]
        assert [e.day for e in features.bookings] == [2]
        # The trainer saw both too (it filters clicks itself).
        assert trainer.events_seen == 2
        assert trainer.steps == 1

    def test_status_shape(self, store, clock):
        _, _, _, loop = _loop(store, clock)
        status = loop.status()
        assert status["trainer"]["abandoned"] is False
        assert status["store_version"] == 0


class TestCrashContainment:
    def test_crash_starts_backoff_and_restart_resumes(self, store, clock):
        bus, features, trainer, loop = _loop(store, clock)
        trainer.fail = True
        bus.publish(_booking(1))
        result = loop.tick()
        assert result["crashes"] == 1
        assert result["backing_off"] is True
        assert not result["abandoned"]
        assert loop.trainer_restarts == 0

        # Still inside the backoff window: no restart, but features keep
        # flowing — freshness must survive a broken trainer.
        trainer.fail = False
        bus.publish(ClickEvent(user_id=0, origin=0, destination=2, day=3))
        result = loop.tick()
        assert result["backing_off"] is True
        assert loop.trainer_restarts == 0
        assert len(features.clicks) == 1

        # Backoff served: the replacement boots and trains this tick.
        clock.now += 10.0
        bus.publish(_booking(4))
        result = loop.tick()
        assert loop.trainer_restarts == 1
        assert trainer.restarts == 1
        assert result["backing_off"] is False
        assert trainer.steps >= 1

    def test_budget_exhaustion_abandons_training(self, store, clock):
        bus, features, trainer, loop = _loop(store, clock, budget=1)
        trainer.fail = True
        bus.publish(_booking(1))
        loop.tick()                     # crash 1: consumes the budget
        clock.now += 10.0
        bus.publish(_booking(2))
        loop.tick()                     # restart, crash 2: budget empty
        assert loop.trainer_crashes == 2
        assert loop.abandoned is True
        assert "scripted trainer crash" in loop.last_error

        # Abandoned is terminal for the write side only: features still
        # ingest, and the trainer queue is drained, not left to rot.
        bus.publish(ClickEvent(user_id=0, origin=0, destination=2, day=9))
        result = loop.tick()
        assert result["abandoned"] is True
        assert len(features.clicks) == 1
        assert loop._trainer_sub.depth == 0
        assert trainer.restarts == 1    # never restarted again


class RecordingTarget:
    def __init__(self):
        self.swaps: list = []

    def swap(self, state, touched_users=None):
        self.swaps.append((sorted(state), touched_users))
        return 0.25


class RecordingShardedTarget(RecordingTarget):
    def apply_snapshot(self, state, touched_users=None):
        self.swaps.append(("apply_snapshot", touched_users))
        return 0.5


class TestSnapshotFollower:
    def test_applies_each_version_once_forward_only(self, store):
        target = RecordingTarget()
        follower = SnapshotFollower(store, target)
        assert follower.poll() is None          # empty store

        store.publish({"w": np.ones(3)}, {"touched_users": [1, 2]})
        assert follower.poll() == 1
        assert follower.poll() is None          # already applied
        assert target.swaps == [(["w"], [1, 2])]

        store.publish({"w": np.zeros(3)}, {"touched_users": None})
        assert follower.poll() == 2
        assert follower.version == 2
        assert follower.swaps == 2
        assert len(follower.lag_history_ms) == 2
        assert len(follower.pause_history_ms) == 2
        assert follower.staleness_s >= 0.0

    def test_prefers_apply_snapshot_over_swap(self, store):
        target = RecordingShardedTarget()
        follower = SnapshotFollower(store, target)
        store.publish({"w": np.ones(3)}, {"touched_users": [7]})
        follower.poll()
        assert target.swaps == [("apply_snapshot", [7])]

    def test_jump_unions_touched_users_across_skipped_versions(self, store):
        target = RecordingShardedTarget()
        follower = SnapshotFollower(store, target)
        store.publish({"w": np.ones(3)}, {"touched_users": [1]})
        assert follower.poll() == 1
        # Two publishes land between polls: applying only the newest
        # delta would leave user 2's rows on v1 while the rest serve v3
        # — the cross-version blend the store contract forbids.
        store.publish({"w": np.full(3, 2.0)}, {"touched_users": [2]})
        store.publish({"w": np.full(3, 3.0)}, {"touched_users": [3]})
        assert follower.poll() == 3
        assert target.swaps[-1] == ("apply_snapshot", [2, 3])

    def test_jump_over_full_refresh_refreshes_fully(self, store):
        target = RecordingShardedTarget()
        follower = SnapshotFollower(store, target)
        store.publish({"w": np.ones(3)}, {"touched_users": [1]})
        follower.poll()
        store.publish({"w": np.full(3, 2.0)}, {"touched_users": None})
        store.publish({"w": np.full(3, 3.0)}, {"touched_users": [3]})
        follower.poll()
        assert target.swaps[-1] == ("apply_snapshot", None)

    def test_loop_polls_followers_every_tick(self, store, clock):
        target = RecordingTarget()
        follower = SnapshotFollower(store, target)
        bus, _, trainer, loop = _loop(store, clock, followers=[follower])
        store.publish({"w": np.ones(3)})
        loop.tick()
        assert follower.version == 1
        # Followers are read-side: they keep swapping even after the
        # write side is abandoned.
        loop.abandoned = True
        store.publish({"w": np.zeros(3)})
        loop.tick()
        assert follower.version == 2
