"""EventBus: bounded per-subscriber queues, drop-oldest backpressure."""

from __future__ import annotations

import pytest

from repro.data.schema import BookingEvent, ClickEvent
from repro.online import EventBus


def _booking(day: int) -> BookingEvent:
    return BookingEvent(user_id=1, origin=0, destination=2, day=day,
                        price=50.0)


class TestSubscription:
    def test_rejects_nonpositive_capacity(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="capacity"):
            bus.subscribe("a", capacity=0)
        with pytest.raises(ValueError, match="capacity"):
            EventBus(capacity=0)

    def test_duplicate_name_rejected(self):
        bus = EventBus()
        bus.subscribe("trainer")
        with pytest.raises(ValueError, match="already registered"):
            bus.subscribe("trainer")

    def test_poll_drains_oldest_first(self):
        bus = EventBus()
        sub = bus.subscribe("a")
        events = [_booking(day) for day in range(5)]
        bus.publish_many(events)
        assert sub.depth == 5
        assert sub.poll(2) == events[:2]
        assert sub.poll() == events[2:]
        assert sub.depth == 0
        assert sub.poll() == []


class TestBackpressure:
    def test_drop_oldest_when_full(self):
        bus = EventBus()
        sub = bus.subscribe("slow", capacity=3)
        events = [_booking(day) for day in range(5)]
        bus.publish_many(events)
        # Freshness-first: the two oldest were dropped, newest retained.
        assert sub.dropped == 2
        assert sub.poll() == events[2:]

    def test_backpressure_is_per_subscriber(self):
        bus = EventBus()
        slow = bus.subscribe("slow", capacity=2)
        fast = bus.subscribe("fast", capacity=100)
        events = [_booking(day) for day in range(6)]
        bus.publish_many(events)
        # A wedged consumer never costs the healthy one a single event.
        assert slow.dropped == 4
        assert fast.dropped == 0
        assert fast.poll() == events
        assert bus.dropped == 4

    def test_delivery_counters(self):
        bus = EventBus()
        sub = bus.subscribe("a")
        bus.publish(_booking(1))
        bus.publish(ClickEvent(user_id=1, origin=0, destination=2, day=1))
        assert bus.published == 2
        assert sub.delivered == 2


class TestPublish:
    def test_rejects_foreign_payloads(self):
        bus = EventBus()
        with pytest.raises(TypeError, match="BookingEvent/ClickEvent"):
            bus.publish({"user_id": 1})

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        sub = bus.subscribe("a")
        bus.unsubscribe("a")
        bus.publish(_booking(1))
        assert sub.depth == 0
        assert bus.subscribers == []
