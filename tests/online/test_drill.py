"""End-to-end drill: the crash matrix must hold under concurrent traffic."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry, use_registry
from repro.online import OnlineDrillConfig, PUBLISH_STAGES, run_online_drill

QUICK = OnlineDrillConfig(
    num_users=60, num_cities=20, events=36, crash_events=24,
    hammer_threads=2, holdout_every=3, shadow_window=24,
    shadow_min_window=4, seed=0,
)


@pytest.fixture(scope="module")
def report():
    with use_registry(MetricsRegistry()):
        return run_online_drill(QUICK)


class TestHappyPath:
    def test_traffic_flowed_and_published(self, report):
        happy = report["happy"]
        assert happy["bookings"] == QUICK.events
        assert happy["steps"] > 0
        assert happy["publishes"] > 0
        assert happy["swaps"] > 0
        assert happy["scored"] > 0
        assert happy["store_version"] >= 2   # baseline + >=1 promotion

    def test_bit_identity_under_hot_swap(self, report):
        happy = report["happy"]
        assert happy["serving_errors"] == 0
        assert happy["torn_reads"] == 0
        # Several distinct versions were actually observed mid-swap —
        # the digest check is only meaningful if scores really changed.
        assert happy["unique_digests"] >= 2


class TestCrashMatrix:
    def test_every_stage_drilled(self, report):
        stages = [entry["stage"] for entry in report["crash_matrix"]]
        assert stages == list(PUBLISH_STAGES)

    @pytest.mark.parametrize("index", range(len(PUBLISH_STAGES)))
    def test_stage_contract(self, report, index):
        entry = report["crash_matrix"][index]
        assert entry["crashed"], entry["stage"]
        assert entry["old_version_preserved"], entry
        assert entry["recovered"], entry
        assert entry["serving_errors"] == 0
        assert entry["torn_reads"] == 0
        assert entry["trainer_restarts"] >= 1


class TestCrashLoop:
    def test_abandoned_within_budget_serving_alive(self, report):
        loop = report["crash_loop"]
        assert loop["abandoned"] is True
        assert loop["crashes"] == QUICK.crash_loop_budget + 1
        assert loop["trainer_restarts"] == QUICK.crash_loop_budget
        # The store never moved past the baseline — and serving kept
        # answering on it the whole time.
        assert loop["store_version"] == 1
        assert loop["serving_errors"] == 0


class TestReportGates:
    def test_totals_are_clean(self, report):
        assert report["torn_reads_total"] == 0
        assert report["serving_errors_total"] == 0
        assert report["versions_monotonic"] is True

    def test_lag_percentiles_recorded(self, report):
        lag = report["update_lag_ms"]
        assert lag["count"] > 0
        assert 0 <= lag["p50"] <= lag["p99"] <= lag["max"]
        pause = report["swap_pause_ms"]
        assert pause["count"] == lag["count"]

    def test_validator_accepts_the_real_report(self, report, tmp_path):
        import importlib.util
        import json
        import pathlib

        checker = (
            pathlib.Path(__file__).resolve().parents[2]
            / "tools" / "check_bench.py"
        )
        spec = importlib.util.spec_from_file_location("check_bench", checker)
        check_bench = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(check_bench)
        full = dict(report)
        full.update({
            "schema_version": 1, "config": {}, "available_cpus": 4,
        })
        path = tmp_path / "BENCH_online.json"
        path.write_text(json.dumps(full))
        assert "ok" in check_bench.check(str(path))
