"""Shared fixtures for the online learning loop tests."""

from __future__ import annotations

import pytest

from repro.core import ODNETConfig, build_odnet
from repro.data.schema import BookingEvent
from repro.online import SnapshotStore
from repro.serving import RealTimeFeatureService

#: shallow model so per-test SGD steps stay fast.
ONLINE_MODEL_CONFIG = ODNETConfig(dim=16, num_heads=2, depth=1, seed=0)


@pytest.fixture()
def features(od_dataset):
    return RealTimeFeatureService(od_dataset.source.bookings_by_user)


@pytest.fixture()
def store(tmp_path):
    return SnapshotStore(tmp_path / "snapshots")


@pytest.fixture()
def online_model(od_dataset):
    return build_odnet(od_dataset, ONLINE_MODEL_CONFIG)


def booking_events(od_dataset, count: int) -> list[BookingEvent]:
    """Bookings derived from test decision points, day-ordered.

    Every event's user has history strictly before the event day (the
    decision point's own history), so the RTFS can always assemble
    features for it.
    """
    points = sorted(od_dataset.source.test_points, key=lambda p: p.day)
    events = []
    for point in points:
        events.append(BookingEvent(
            user_id=point.history.user_id,
            origin=point.target.origin,
            destination=point.target.destination,
            day=point.day,
            price=100.0,
        ))
        if len(events) >= count:
            break
    assert len(events) == count, "dataset too small for requested events"
    return events
