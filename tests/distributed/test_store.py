"""ShardedEmbeddingStore: placement, tiers, per-shard invalidation."""

import numpy as np
import pytest

from repro.distributed import ShardedEmbeddingStore, hash_shard


@pytest.fixture()
def table(rng):
    return rng.normal(size=(500, 8)).astype(np.float32)


@pytest.fixture()
def store(table, tmp_path):
    return ShardedEmbeddingStore.from_array(
        table, tmp_path, name="users", num_shards=8, max_hot_shards=4
    )


class TestConstruction:
    def test_invalid_shapes_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedEmbeddingStore.create(tmp_path, "x", num_rows=0, dim=4)
        with pytest.raises(ValueError):
            ShardedEmbeddingStore.create(tmp_path, "x", num_rows=4, dim=0)
        with pytest.raises(ValueError):
            ShardedEmbeddingStore.from_array(
                np.zeros(5, dtype=np.float32), tmp_path
            )

    def test_create_is_zero_initialised(self, tmp_path):
        store = ShardedEmbeddingStore.create(
            tmp_path, "zeros", num_rows=50, dim=4, num_shards=4
        )
        np.testing.assert_array_equal(
            store.rows(np.arange(50)), np.zeros((50, 4), dtype=np.float32)
        )

    def test_reopen_sees_spilled_data(self, table, store, tmp_path):
        again = ShardedEmbeddingStore.open(tmp_path, name="users")
        np.testing.assert_allclose(
            again.rows(np.arange(table.shape[0])), table,
            rtol=2e-3, atol=1e-3,
        )
        assert again.num_shards == store.num_shards


class TestPlacement:
    def test_placement_follows_hash_shard(self, store):
        for row in (0, 17, 499):
            assert store.shard_of(row) == hash_shard(row, store.num_shards)

    def test_every_row_has_one_slot(self, store):
        members = np.concatenate([
            store.shard_members(s) for s in range(store.num_shards)
        ])
        np.testing.assert_array_equal(np.sort(members), np.arange(500))

    def test_shards_for_unique_ascending(self, store):
        rows = np.array([0, 1, 0, 2, 1])
        shards = store.shards_for(rows)
        assert list(shards) == sorted(set(shards.tolist()))


class TestReads:
    def test_round_trip_within_float16(self, table, store):
        ids = np.arange(table.shape[0])
        got = store.rows(ids)
        assert got.dtype == np.float32
        np.testing.assert_allclose(got, table, rtol=2e-3, atol=1e-3)

    def test_rows_preserve_id_shape(self, store):
        ids = np.array([[1, 2], [3, 4]])
        assert store.rows(ids).shape == (2, 2, store.dim)

    def test_hot_tier_hits_after_first_decode(self, store):
        shard = store.shard_of(0)
        siblings = store.shard_members(shard)[:3]
        store.rows(siblings[:1])
        assert (store.hits, store.misses) == (0, 1)
        store.rows(siblings)
        assert store.hits == 1
        assert store.hit_rate == pytest.approx(0.5)

    def test_lru_evicts_oldest_beyond_max_hot(self, table, tmp_path):
        store = ShardedEmbeddingStore.from_array(
            table, tmp_path, name="lru", num_shards=8, max_hot_shards=2
        )
        # Touch three distinct shards; the first decoded one must fall out.
        first = store.shard_of(0)
        touched = [0]
        for row in range(1, 500):
            if store.shard_of(row) not in {
                store.shard_of(r) for r in touched
            }:
                touched.append(row)
            if len(touched) == 3:
                break
        for row in touched:
            store.rows(np.array([row]))
        assert store.evictions == 1
        assert len(store.hot_shards()) == 2
        assert first not in store.hot_shards()


class TestWriteBack:
    def test_write_rows_round_trip(self, store):
        ids = np.array([3, 100, 499])
        fresh = np.full((3, store.dim), 2.5, dtype=np.float32)
        store.write_rows(ids, fresh)
        np.testing.assert_allclose(store.rows(ids), fresh, rtol=2e-3)

    def test_bumps_only_touched_shards(self, store):
        target = 42
        shard = store.shard_of(target)
        before = [store.shard_version(s) for s in range(store.num_shards)]
        store.write_rows(
            np.array([target]), np.ones((1, store.dim), dtype=np.float32)
        )
        after = [store.shard_version(s) for s in range(store.num_shards)]
        assert after[shard] == before[shard] + 1
        for s in range(store.num_shards):
            if s != shard:
                assert after[s] == before[s]

    def test_untouched_hot_blocks_survive(self, store):
        # Warm two shards, write into one: the other's decoded block must
        # stay resident (per-shard invalidation, not a global flush).
        a, b = 0, next(
            r for r in range(1, 500)
            if store.shard_of(r) != store.shard_of(0)
        )
        store.rows(np.array([a, b]))
        store.write_rows(
            np.array([a]), np.zeros((1, store.dim), dtype=np.float32)
        )
        assert store.shard_of(a) not in store.hot_shards()
        assert store.shard_of(b) in store.hot_shards()

    def test_next_read_sees_fresh_data_not_stale_cache(self, store):
        store.rows(np.array([7]))  # decode the shard (now hot)
        fresh = np.full((1, store.dim), -3.0, dtype=np.float32)
        store.write_rows(np.array([7]), fresh)
        np.testing.assert_allclose(
            store.rows(np.array([7])), fresh, rtol=2e-3
        )


class TestFootprint:
    def test_resident_below_disk_when_cold(self, store):
        # Index only: two int32 arrays, far below the fp16 payload.
        assert store.resident_nbytes < store.disk_nbytes

    def test_disk_is_float16_payload(self, store):
        # 500 rows x 8 dims x 2 bytes (shards pad empties to one row).
        assert store.disk_nbytes >= 500 * 8 * 2
