"""Parameter and data sharding, plus the blake2b ring discipline."""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    hash_shard,
    hash_shard_many,
    shard_parameters,
    shard_samples,
)


class TestParameterSharding:
    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            shard_parameters([("a", 10)], 0)

    def test_all_parameters_assigned(self):
        sizes = [("a", 100), ("b", 50), ("c", 25), ("d", 25)]
        assignment = shard_parameters(sizes, 2)
        assert set(assignment) == {"a", "b", "c", "d"}
        assert set(assignment.values()) <= {0, 1}

    def test_balanced_assignment(self):
        sizes = [("a", 100), ("b", 100), ("c", 100), ("d", 100)]
        assignment = shard_parameters(sizes, 2)
        loads = [0, 0]
        for name, size in sizes:
            loads[assignment[name]] += size
        assert loads == [200, 200]

    def test_deterministic(self):
        sizes = [("a", 7), ("b", 7), ("c", 3)]
        assert shard_parameters(sizes, 2) == shard_parameters(sizes, 2)

    @given(
        n=st.integers(1, 30),
        servers=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_load_balance_bound(self, n, servers, seed):
        rng = np.random.default_rng(seed)
        sizes = [(f"p{i}", int(rng.integers(1, 1000))) for i in range(n)]
        assignment = shard_parameters(sizes, servers)
        loads = np.zeros(servers)
        for name, size in sizes:
            loads[assignment[name]] += size
        # LPT guarantee: max load <= mean + largest item.
        largest = max(size for _, size in sizes)
        assert loads.max() <= loads.mean() + largest


class TestSampleSharding:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            shard_samples(10, 0)

    def test_partition_is_exact(self):
        shards = shard_samples(103, 4)
        assert len(shards) == 4
        combined = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(combined), np.arange(103))

    def test_near_equal_sizes(self):
        shards = shard_samples(103, 4)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1

    def test_fewer_samples_than_workers(self):
        # A tiny dataset across a big fleet: every sample still lands on
        # exactly one worker and the surplus workers get empty shards.
        shards = shard_samples(3, 5)
        assert len(shards) == 5
        combined = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(combined), np.arange(3))
        assert sum(1 for s in shards if len(s) == 0) == 2


class TestHashShard:
    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            hash_shard(1, 0)
        with pytest.raises(ValueError):
            hash_shard_many(np.arange(3), -1)

    def test_matches_blake2b_reference(self):
        # The ring discipline: big-endian 64-bit blake2b of the decimal
        # form, mod num_shards.  Pinning the reference keeps placement
        # process- and restart-independent (unlike salted hash()).
        for key in (0, 7, 123456789, "user:42"):
            digest = hashlib.blake2b(
                str(key).encode("utf-8"), digest_size=8
            ).digest()
            expected = int.from_bytes(digest, "big") % 16
            assert hash_shard(key, 16) == expected

    def test_deterministic_across_calls(self):
        assert [hash_shard(k, 64) for k in range(100)] == [
            hash_shard(k, 64) for k in range(100)
        ]

    def test_in_range(self):
        shards = hash_shard_many(np.arange(1000), 7)
        assert shards.min() >= 0
        assert shards.max() < 7

    def test_many_matches_scalar(self):
        keys = np.arange(200)
        np.testing.assert_array_equal(
            hash_shard_many(keys, 13),
            np.array([hash_shard(int(k), 13) for k in keys]),
        )

    def test_distribution_is_balanced(self):
        counts = np.bincount(
            hash_shard_many(np.arange(10_000), 16), minlength=16
        )
        mean = 10_000 / 16
        assert counts.min() > 0.7 * mean
        assert counts.max() < 1.3 * mean
