"""Parameter and data sharding."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import shard_parameters, shard_samples


class TestParameterSharding:
    def test_invalid_server_count(self):
        with pytest.raises(ValueError):
            shard_parameters([("a", 10)], 0)

    def test_all_parameters_assigned(self):
        sizes = [("a", 100), ("b", 50), ("c", 25), ("d", 25)]
        assignment = shard_parameters(sizes, 2)
        assert set(assignment) == {"a", "b", "c", "d"}
        assert set(assignment.values()) <= {0, 1}

    def test_balanced_assignment(self):
        sizes = [("a", 100), ("b", 100), ("c", 100), ("d", 100)]
        assignment = shard_parameters(sizes, 2)
        loads = [0, 0]
        for name, size in sizes:
            loads[assignment[name]] += size
        assert loads == [200, 200]

    def test_deterministic(self):
        sizes = [("a", 7), ("b", 7), ("c", 3)]
        assert shard_parameters(sizes, 2) == shard_parameters(sizes, 2)

    @given(
        n=st.integers(1, 30),
        servers=st.integers(1, 6),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_load_balance_bound(self, n, servers, seed):
        rng = np.random.default_rng(seed)
        sizes = [(f"p{i}", int(rng.integers(1, 1000))) for i in range(n)]
        assignment = shard_parameters(sizes, servers)
        loads = np.zeros(servers)
        for name, size in sizes:
            loads[assignment[name]] += size
        # LPT guarantee: max load <= mean + largest item.
        largest = max(size for _, size in sizes)
        assert loads.max() <= loads.mean() + largest


class TestSampleSharding:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            shard_samples(10, 0)

    def test_partition_is_exact(self):
        shards = shard_samples(103, 4)
        assert len(shards) == 4
        combined = np.concatenate(shards)
        np.testing.assert_array_equal(np.sort(combined), np.arange(103))

    def test_near_equal_sizes(self):
        shards = shard_samples(103, 4)
        sizes = [len(s) for s in shards]
        assert max(sizes) - min(sizes) <= 1
