"""Parameter-server training under chaos: retries, drops, dead workers,
and checkpoint recovery."""

import numpy as np
import pytest

from repro.core import build_odnet
from repro.distributed import ParameterServerTrainer, PSConfig
from repro.obs import use_registry
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    RetriesExhausted,
    use_fault_injector,
)
from tests.conftest import TINY_MODEL_CONFIG


def make_trainer(od_dataset, **overrides):
    defaults = dict(num_servers=2, num_workers=3, epochs=3, seed=0)
    defaults.update(overrides)
    model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
    return ParameterServerTrainer(model, od_dataset, PSConfig(**defaults))


class TestPSConfigValidation:
    @pytest.mark.parametrize("field,value", [
        ("num_servers", 0), ("num_workers", 0), ("epochs", 0),
        ("batch_size", 0), ("staleness", -1), ("learning_rate", 0.0),
    ])
    def test_invalid_values_rejected_with_offender(self, field, value):
        with pytest.raises(ValueError, match=str(value)):
            PSConfig(**{field: value})

    def test_valid_config_accepted(self):
        PSConfig(num_servers=1, num_workers=1, epochs=1, batch_size=1,
                 staleness=0, learning_rate=0.1)


class TestRetryablePushPull:
    def test_transient_pull_faults_absorbed_by_retry(self, od_dataset):
        trainer = make_trainer(od_dataset, epochs=1)
        chaos = FaultInjector(seed=0).add(
            "ps.pull", FaultSpec(error_rate=1.0, max_faults=2)
        )
        with use_registry() as registry, use_fault_injector(chaos):
            stats = trainer.fit()
        assert len(stats.epoch_losses) == 1
        assert np.isfinite(stats.epoch_losses).all()
        assert registry.counter(
            "resilience.retries", labels={"site": "ps.pull"}
        ).value == 2

    def test_exhausted_push_is_dropped_not_fatal(self, od_dataset):
        trainer = make_trainer(od_dataset, epochs=2, num_workers=2)
        # Exactly max_attempts faults: the first push shard exhausts its
        # retries and is dropped; everything afterwards is healthy.
        attempts = trainer.retry_policy.max_attempts
        chaos = FaultInjector(seed=0).add(
            "ps.push", FaultSpec(error_rate=1.0, max_faults=attempts)
        )
        with use_registry() as registry, use_fault_injector(chaos):
            stats = trainer.fit()
        assert stats.dropped_pushes == 1
        assert len(stats.epoch_losses) == 2
        assert np.isfinite(stats.epoch_losses).all()
        assert registry.counter("resilience.dropped_pushes").value == 1


class TestWorkerFailures:
    def test_one_killed_worker_sync_round_uses_survivors(self, od_dataset):
        trainer = make_trainer(od_dataset, epochs=2)
        chaos = FaultInjector(seed=0).add(
            "worker.compute", FaultSpec(error_rate=1.0, max_faults=1)
        )
        with use_fault_injector(chaos):
            stats = trainer.fit()
        assert stats.worker_failures == 1
        assert len(stats.epoch_losses) == 2
        assert np.isfinite(stats.epoch_losses).all()
        assert stats.epoch_losses[-1] < stats.epoch_losses[0]

    def test_acceptance_scenario_drops_and_dead_worker(self, od_dataset):
        """Push drops + a killed worker: all epochs complete, final loss
        finite and below the first-epoch loss."""
        trainer = make_trainer(od_dataset, epochs=3)
        chaos = FaultInjector(seed=1)
        chaos.add("ps.push", FaultSpec(error_rate=0.3))
        chaos.add("worker.compute", FaultSpec(error_rate=1.0, max_faults=1))
        with use_fault_injector(chaos):
            stats = trainer.fit()
        assert len(stats.epoch_losses) == trainer.config.epochs
        assert stats.worker_failures == 1
        assert np.isfinite(stats.epoch_losses[-1])
        assert stats.epoch_losses[-1] < stats.epoch_losses[0]

    def test_async_mode_survives_worker_faults(self, od_dataset):
        trainer = make_trainer(od_dataset, epochs=2, mode="async",
                               staleness=1)
        chaos = FaultInjector(seed=0).add(
            "worker.compute", FaultSpec(error_rate=0.3)
        )
        with use_fault_injector(chaos):
            stats = trainer.fit()
        assert len(stats.epoch_losses) == 2
        assert np.isfinite(stats.epoch_losses[-1])


class TestGradientAliasing:
    def test_sync_accumulation_does_not_mutate_worker_gradients(
        self, od_dataset
    ):
        """Regression: ``accumulated = gradients`` aliased worker 0's
        returned dict and ``+=`` mutated it in place."""
        trainer = make_trainer(od_dataset, epochs=1, num_workers=2)
        worker = trainer.workers[0]
        original = worker.compute_gradients
        snapshots = []

        def spy(batch):
            gradients, loss = original(batch)
            snapshots.append(
                (gradients, {k: v.copy() for k, v in gradients.items()})
            )
            return gradients, loss

        worker.compute_gradients = spy
        trainer.fit()
        assert snapshots
        for gradients, snapshot in snapshots:
            for name, value in snapshot.items():
                np.testing.assert_array_equal(gradients[name], value)


class TestCheckpointRecovery:
    def test_mid_run_crash_resumes_from_checkpoint(self, od_dataset,
                                                   tmp_path):
        path = tmp_path / "ps.npz"
        trainer = make_trainer(od_dataset, epochs=4, num_workers=2)
        # Pulls fail hard from the second epoch on: fit crashes, but the
        # epoch-1 checkpoint survives atomically.
        config = trainer.config
        steps = max(1, len(od_dataset.samples("train"))
                    // (config.batch_size * config.num_workers))
        pulls_in_epoch_1 = (steps + 1) * config.num_servers  # + checkpoint
        chaos = FaultInjector(seed=1).add(
            "ps.pull", FaultSpec(error_rate=1.0, after_calls=pulls_in_epoch_1)
        )
        with pytest.raises(RetriesExhausted):
            with use_fault_injector(chaos):
                trainer.fit(checkpoint_path=path)
        assert path.exists()

        resumed = make_trainer(od_dataset, epochs=4, num_workers=2)
        stats = resumed.fit(checkpoint_path=path)
        assert 1 <= stats.start_epoch < 4
        assert stats.start_epoch + len(stats.epoch_losses) == 4
        assert np.isfinite(stats.epoch_losses).all()

    def test_completed_run_resumes_to_noop(self, od_dataset, tmp_path):
        path = tmp_path / "ps.npz"
        trainer = make_trainer(od_dataset, epochs=2, num_workers=2)
        first = trainer.fit(checkpoint_path=path)
        assert len(first.epoch_losses) == 2

        again = make_trainer(od_dataset, epochs=2, num_workers=2)
        stats = again.fit(checkpoint_path=path)
        assert stats.start_epoch == 2
        assert stats.epoch_losses == []

    def test_checkpoint_every_validated(self, od_dataset):
        trainer = make_trainer(od_dataset, epochs=1)
        with pytest.raises(ValueError):
            trainer.fit(checkpoint_every=0)

    def test_resumed_model_matches_server_weights(self, od_dataset,
                                                  tmp_path):
        path = tmp_path / "ps.npz"
        trainer = make_trainer(od_dataset, epochs=1, num_workers=2)
        trainer.fit(checkpoint_path=path)
        resumed = make_trainer(od_dataset, epochs=1, num_workers=2)
        resumed.fit(checkpoint_path=path)
        server_weights = {}
        for server in resumed.servers:
            server_weights.update(server.pull())
        for name, param in resumed.model.named_parameters():
            np.testing.assert_allclose(param.data, server_weights[name])
