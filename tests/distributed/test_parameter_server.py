"""Simulated parameter-server training."""

import numpy as np
import pytest

from repro.core import build_odnet
from repro.distributed import ParameterServer, ParameterServerTrainer, PSConfig
from tests.conftest import TINY_MODEL_CONFIG


class TestParameterServer:
    def test_push_unknown_parameter_rejected(self):
        server = ParameterServer(0, learning_rate=0.01)
        server.register("w", np.zeros(3))
        with pytest.raises(KeyError):
            server.push({"unknown": np.zeros(3)})

    def test_pull_returns_copies(self):
        server = ParameterServer(0, learning_rate=0.01)
        server.register("w", np.ones(3))
        pulled = server.pull()["w"]
        pulled[:] = 99.0
        assert np.allclose(server.pull()["w"], 1.0)

    def test_push_moves_against_gradient(self):
        server = ParameterServer(0, learning_rate=0.1, grad_clip=None)
        server.register("w", np.zeros(3))
        server.push({"w": np.ones(3)})
        assert np.all(server.pull()["w"] < 0)

    def test_counts(self):
        server = ParameterServer(0, learning_rate=0.1)
        server.register("w", np.zeros(2))
        server.pull()
        server.push({"w": np.ones(2)})
        assert server.pulls == 1
        assert server.pushes == 1
        assert server.num_elements == 2

    def test_obs_counts_and_bytes(self):
        from repro.obs import use_registry

        server = ParameterServer(0, learning_rate=0.1)
        weights = np.zeros(4)
        server.register("w", weights)
        with use_registry() as registry:
            server.pull()
            server.push({"w": np.ones(4)})
        assert registry.counter("ps.pulls").value == 1
        assert registry.counter("ps.pushes").value == 1
        assert registry.counter("ps.pull_bytes").value == weights.nbytes
        assert registry.counter("ps.push_bytes").value == weights.nbytes


class TestTrainer:
    def test_invalid_mode(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        with pytest.raises(ValueError):
            ParameterServerTrainer(model, od_dataset,
                                   PSConfig(mode="federated"))

    def test_parameters_cover_all_servers(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        trainer = ParameterServerTrainer(
            model, od_dataset, PSConfig(num_servers=3, num_workers=2,
                                        epochs=1)
        )
        total = sum(server.num_elements for server in trainer.servers)
        assert total == model.num_parameters()
        assert all(server.num_elements > 0 for server in trainer.servers)

    def test_sync_training_reduces_loss(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        trainer = ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=2, num_workers=2, epochs=2, seed=0),
        )
        stats = trainer.fit()
        assert stats.epoch_losses[-1] < stats.epoch_losses[0]
        assert stats.pushes > 0 and stats.pulls > 0

    def test_async_training_reduces_loss(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        trainer = ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=2, num_workers=2, epochs=2, mode="async",
                     staleness=1, seed=0),
        )
        stats = trainer.fit()
        assert stats.epoch_losses[-1] < stats.epoch_losses[0]

    def test_final_weights_written_back_to_model(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        trainer = ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=2, num_workers=2, epochs=1, seed=0),
        )
        trainer.fit()
        server_weights = {}
        for server in trainer.servers:
            server_weights.update(server.pull())
        for name, param in model.named_parameters():
            np.testing.assert_allclose(param.data, server_weights[name])

    def test_distributed_model_is_usable(self, od_dataset):
        from repro.train import evaluate_auc

        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=2, num_workers=3, epochs=2, seed=0),
        ).fit()
        metrics = evaluate_auc(model, od_dataset)
        assert metrics["AUC-O"] > 0.6

    def test_single_worker_sync_matches_plain_steps(self, od_dataset):
        """With one worker and one server, PS-sync is ordinary Adam on the
        same batch stream — losses must be finite and decreasing-ish."""
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        trainer = ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=1, num_workers=1, epochs=2, seed=0),
        )
        stats = trainer.fit()
        assert np.isfinite(stats.epoch_losses).all()
        assert stats.epoch_losses[-1] < stats.epoch_losses[0]


class TestPushThrottle:
    """The guard's token bucket on the push path (gradient floods)."""

    class FakeClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

        def advance(self, seconds):
            self.now += seconds

    def make_server(self, rate, burst):
        from repro.guard import TokenBucket

        clock = self.FakeClock()
        bucket = TokenBucket(rate, burst, clock=clock)
        server = ParameterServer(0, learning_rate=0.1, push_bucket=bucket)
        server.register("w", np.zeros(3))
        return server, clock

    def test_over_rate_push_is_typed_and_state_free(self):
        from repro.guard import AdmissionRejected

        server, _clock = self.make_server(rate=10.0, burst=1.0)
        server.push({"w": np.ones(3)})
        before = server.pull()["w"].copy()
        with pytest.raises(AdmissionRejected) as excinfo:
            server.push({"w": np.ones(3)})
        assert excinfo.value.site == "ps.push"
        assert excinfo.value.reason == "rate_limited"
        # The throttled push mutated nothing, so a later retry is safe.
        assert server.pushes == 1
        assert server.throttled_pushes == 1
        np.testing.assert_allclose(server.pull()["w"], before)

    def test_bucket_refill_readmits_pushes(self):
        from repro.guard import AdmissionRejected

        server, clock = self.make_server(rate=10.0, burst=1.0)
        server.push({"w": np.ones(3)})
        with pytest.raises(AdmissionRejected):
            server.push({"w": np.ones(3)})
        clock.advance(0.1)                      # one token back
        server.push({"w": np.ones(3)})
        assert server.pushes == 2

    def test_trainer_counts_throttled_pushes(self, od_dataset):
        """An absurdly low push_rate throttles most pushes; training
        still completes (throttled pushes retry, then drop)."""
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        trainer = ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=2, num_workers=2, epochs=1, seed=0,
                     push_rate=0.5, push_burst=2.0),
        )
        assert trainer.push_bucket is not None
        stats = trainer.fit()
        assert stats.throttled_pushes > 0
        assert np.isfinite(stats.epoch_losses).all()

    def test_no_bucket_without_push_rate(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        trainer = ParameterServerTrainer(
            model, od_dataset,
            PSConfig(num_servers=1, num_workers=1, epochs=1, seed=0),
        )
        assert trainer.push_bucket is None
