"""End-to-end integration: generate -> train -> evaluate -> serve -> A/B.

These tests exercise the complete pipeline that the paper's production
system runs (Figure 9), at tiny scale, and assert the qualitative
relationships the reproduction is built around.
"""

import numpy as np
import pytest

from repro import (
    ABTestConfig,
    ABTestSimulator,
    FlightRecommender,
    ODNETConfig,
    TrainConfig,
    build_odnet,
    build_stl,
    evaluate_model,
)
from repro.baselines import MostPop
from tests.conftest import TINY_MODEL_CONFIG


class TestFullPipeline:
    def test_train_evaluate_serve(self, od_dataset, trained_odnet):
        tasks = od_dataset.ranking_tasks(
            num_candidates=15, rng=np.random.default_rng(0), max_tasks=60
        )
        metrics = evaluate_model(trained_odnet, od_dataset, tasks)
        assert metrics["AUC-O"] > 0.7
        assert metrics["HR@10"] > 0.3

        recommender = FlightRecommender(trained_odnet, od_dataset)
        user = od_dataset.source.test_points[0].history.user_id
        response = recommender.recommend(user_id=user, day=725, k=5)
        assert 0 < len(response) <= 5

    def test_odnet_beats_mostpop_everywhere(self, od_dataset, trained_odnet):
        """The weakest qualitative claim of Table III, at tiny scale."""
        mostpop = MostPop()
        mostpop.fit(od_dataset)
        tasks = od_dataset.ranking_tasks(
            num_candidates=15, rng=np.random.default_rng(1), max_tasks=80
        )
        odnet_metrics = evaluate_model(trained_odnet, od_dataset, tasks)
        mostpop_metrics = evaluate_model(mostpop, od_dataset, tasks)
        assert odnet_metrics["HR@5"] > mostpop_metrics["HR@5"]
        assert odnet_metrics["MRR@10"] > mostpop_metrics["MRR@10"]

    def test_odnet_beats_mostpop_in_ctr(self, od_dataset, trained_odnet):
        """Figure 7's qualitative claim."""
        mostpop = MostPop()
        mostpop.fit(od_dataset)
        tasks = od_dataset.ranking_tasks(
            num_candidates=20, rng=np.random.default_rng(2), max_tasks=120
        )
        result = ABTestSimulator(
            od_dataset, ABTestConfig(days=5, users_per_day_per_method=20,
                                     seed=3)
        ).run({"ODNET": trained_odnet, "MostPop": mostpop}, tasks)
        assert result.mean_ctr("ODNET") > result.mean_ctr("MostPop")

    def test_state_dict_roundtrip_preserves_scores(self, od_dataset,
                                                   trained_odnet):
        clone = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        clone.load_state_dict(trained_odnet.state_dict())
        batch = next(od_dataset.iter_batches("test", 16, shuffle=False))
        np.testing.assert_allclose(
            clone.score_pairs(batch), trained_odnet.score_pairs(batch)
        )

    def test_seed_reproducibility_of_full_run(self, od_dataset):
        config = ODNETConfig(dim=8, num_heads=2, depth=1, expert_dim=16,
                             tower_hidden=8, seed=5)

        def run():
            model = build_odnet(od_dataset, config)
            model.fit(od_dataset, TrainConfig(epochs=1, seed=5))
            batch = next(od_dataset.iter_batches("test", 8, shuffle=False))
            return model.score_pairs(batch)

        np.testing.assert_allclose(run(), run())

    def test_stl_pipeline_end_to_end(self, od_dataset):
        model = build_stl(od_dataset, TINY_MODEL_CONFIG, "STL+G")
        model.fit(od_dataset, TrainConfig(epochs=1, seed=0))
        tasks = od_dataset.ranking_tasks(num_candidates=10, max_tasks=20)
        metrics = evaluate_model(model, od_dataset, tasks)
        assert np.isfinite(metrics["HR@5"])
