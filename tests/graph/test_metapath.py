"""Metapaths and capped neighbour tables."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import (
    EdgeType,
    HeterogeneousSpatialGraph,
    Metapath,
    build_neighbor_table,
)


def _graph_with_fanout(num_users=6, num_cities=10, seed=0):
    rng = np.random.default_rng(seed)
    coords = np.column_stack(
        [rng.uniform(0, 10, num_cities), rng.uniform(0, 10, num_cities)]
    )
    g = HeterogeneousSpatialGraph(num_users, coords)
    for user in range(num_users):
        for city in rng.choice(num_cities, size=4, replace=False):
            g.add_edge(user, int(city), EdgeType.DEPARTURE)
            g.add_edge(user, int(city), EdgeType.ARRIVE)
    return g


class TestMetapath:
    def test_factories(self):
        assert Metapath.origin_aware().edge_type is EdgeType.DEPARTURE
        assert Metapath.destination_aware().edge_type is EdgeType.ARRIVE

    def test_names(self):
        assert Metapath.origin_aware().name == "rho_1"
        assert Metapath.destination_aware().name == "rho_2"


class TestNeighborTable:
    def test_cap_respected(self):
        g = _graph_with_fanout()
        table = build_neighbor_table(g, Metapath.origin_aware(), max_neighbors=3)
        assert table.user_neighbors.shape == (6, 3)
        assert table.city_neighbors.shape == (10, 3)
        assert table.max_neighbors == 3

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            build_neighbor_table(
                _graph_with_fanout(), Metapath.origin_aware(), max_neighbors=0
            )

    def test_mask_marks_padding(self):
        g = _graph_with_fanout()
        table = build_neighbor_table(g, Metapath.origin_aware(), max_neighbors=8)
        # Each user has exactly 4 departure cities.
        assert (table.user_mask.sum(axis=1) == 4).all()

    def test_most_frequent_neighbors_kept(self):
        coords = np.zeros((4, 2))
        coords[:, 0] = np.arange(4)
        g = HeterogeneousSpatialGraph(1, coords)
        g.add_edge(0, 0, EdgeType.DEPARTURE, weight=5)
        g.add_edge(0, 1, EdgeType.DEPARTURE, weight=1)
        g.add_edge(0, 2, EdgeType.DEPARTURE, weight=3)
        table = build_neighbor_table(g, Metapath.origin_aware(), max_neighbors=2)
        assert table.user_neighbors[0].tolist() == [0, 2]

    def test_tie_break_by_ascending_id(self):
        coords = np.zeros((3, 2))
        coords[:, 0] = np.arange(3)
        g = HeterogeneousSpatialGraph(1, coords)
        g.add_edge(0, 2, EdgeType.DEPARTURE)
        g.add_edge(0, 1, EdgeType.DEPARTURE)
        table = build_neighbor_table(g, Metapath.origin_aware(), max_neighbors=1)
        assert table.user_neighbors[0, 0] == 1

    def test_indices_always_valid_city_ids(self):
        g = _graph_with_fanout(seed=5)
        table = build_neighbor_table(g, Metapath.destination_aware())
        assert table.user_neighbors.min() >= 0
        assert table.user_neighbors.max() < g.num_cities
        assert table.city_neighbors.max() < g.num_cities

    @given(seed=st.integers(0, 200), cap=st.integers(1, 7))
    @settings(max_examples=20, deadline=None)
    def test_property_masked_entries_only_padding(self, seed, cap):
        g = _graph_with_fanout(seed=seed)
        table = build_neighbor_table(g, Metapath.origin_aware(), cap)
        # Valid prefix then padding: mask must be monotonically decreasing.
        diffs = np.diff(table.user_mask.astype(int), axis=1)
        assert (diffs <= 0).all()
