"""Distance matrices and Eq. 2 spatial weights, with property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import haversine_matrix, l2_distance_matrix, spatial_weights


def _coords(n, seed=0):
    rng = np.random.default_rng(seed)
    return np.column_stack(
        [rng.uniform(100, 125, n), rng.uniform(20, 45, n)]
    )


class TestL2Distance:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            l2_distance_matrix(np.zeros((3, 3)))

    def test_symmetric_zero_diagonal(self):
        d = l2_distance_matrix(_coords(6))
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_known_value(self):
        d = l2_distance_matrix(np.array([[0.0, 0.0], [3.0, 4.0]]))
        assert d[0, 1] == pytest.approx(5.0)


class TestHaversine:
    def test_symmetric_zero_diagonal(self):
        d = haversine_matrix(_coords(6))
        np.testing.assert_allclose(d, d.T, atol=1e-9)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_quarter_meridian(self):
        # Equator to the north pole is ~10,007 km.
        d = haversine_matrix(np.array([[0.0, 0.0], [0.0, 90.0]]))
        assert d[0, 1] == pytest.approx(10_007, rel=0.01)

    def test_triangle_inequality_sampled(self):
        d = haversine_matrix(_coords(8, seed=3))
        for i in range(8):
            for j in range(8):
                for k in range(8):
                    assert d[i, j] <= d[i, k] + d[k, j] + 1e-6


class TestSpatialWeights:
    def test_requires_square(self):
        with pytest.raises(ValueError):
            spatial_weights(np.zeros((2, 3)))

    def test_zero_diagonal(self):
        w = spatial_weights(l2_distance_matrix(_coords(5)))
        np.testing.assert_allclose(np.diag(w), 0.0)

    def test_rows_sum_to_one(self):
        w = spatial_weights(l2_distance_matrix(_coords(5)))
        np.testing.assert_allclose(w.sum(axis=1), 1.0)

    def test_nearer_city_gets_larger_weight(self):
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]])
        w = spatial_weights(l2_distance_matrix(coords))
        assert w[0, 1] > w[0, 2]

    def test_single_city_degenerates_to_zero_row(self):
        w = spatial_weights(np.zeros((1, 1)))
        np.testing.assert_allclose(w, 0.0)

    @given(n=st.integers(2, 12), seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_property_row_stochastic_nonnegative(self, n, seed):
        w = spatial_weights(l2_distance_matrix(_coords(n, seed)))
        assert np.all(w >= 0)
        np.testing.assert_allclose(w.sum(axis=1), 1.0, atol=1e-9)
        np.testing.assert_allclose(np.diag(w), 0.0)
