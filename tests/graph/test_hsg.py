"""Heterogeneous Spatial Graph: construction, queries, metapath semantics."""

import numpy as np
import pytest

from repro.graph import EdgeType, HeterogeneousSpatialGraph, NodeType


def _small_graph():
    """Figure 2-style toy HSG: 3 users, 5 cities."""
    coords = np.array(
        [[0.0, 0.0], [1.0, 0.0], [2.0, 0.0], [0.0, 1.0], [1.0, 1.0]]
    )
    g = HeterogeneousSpatialGraph(num_users=3, city_coordinates=coords)
    # user0 departs from cities 0,1; arrives at 3
    g.add_edge(0, 0, EdgeType.DEPARTURE)
    g.add_edge(0, 1, EdgeType.DEPARTURE)
    g.add_edge(0, 3, EdgeType.ARRIVE)
    # user1 arrives at 3 and 4 (so 3 and 4 become metapath neighbours)
    g.add_edge(1, 3, EdgeType.ARRIVE)
    g.add_edge(1, 4, EdgeType.ARRIVE)
    # user2 departs twice from 0
    g.add_edge(2, 0, EdgeType.DEPARTURE, weight=2)
    return g


class TestConstruction:
    def test_validates_users(self):
        with pytest.raises(ValueError):
            HeterogeneousSpatialGraph(0, np.zeros((2, 2)))

    def test_validates_coordinates(self):
        with pytest.raises(ValueError):
            HeterogeneousSpatialGraph(1, np.zeros((2, 3)))

    def test_validates_distance_matrix_shape(self):
        with pytest.raises(ValueError):
            HeterogeneousSpatialGraph(
                1, np.zeros((3, 2)), distance_matrix=np.zeros((2, 2))
            )

    def test_edge_bounds_checked(self):
        g = _small_graph()
        with pytest.raises(IndexError):
            g.add_edge(5, 0, EdgeType.DEPARTURE)
        with pytest.raises(IndexError):
            g.add_edge(0, 99, EdgeType.ARRIVE)

    def test_edge_weight_positive(self):
        g = _small_graph()
        with pytest.raises(ValueError):
            g.add_edge(0, 0, EdgeType.DEPARTURE, weight=0)

    def test_edge_counts(self):
        g = _small_graph()
        assert g.num_edges(EdgeType.DEPARTURE) == 4  # weight 2 counts twice
        assert g.num_edges(EdgeType.ARRIVE) == 3
        assert g.num_edges() == 7

    def test_from_events(self):
        coords = np.zeros((3, 2))
        coords[:, 0] = [0, 1, 2]
        g = HeterogeneousSpatialGraph.from_events(
            2, coords, [(0, 0, 1), (1, 1, 2)]
        )
        assert g.num_edges(EdgeType.DEPARTURE) == 2
        assert g.num_edges(EdgeType.ARRIVE) == 2

    def test_repr_mentions_counts(self):
        assert "departure_edges=4" in repr(_small_graph())


class TestQueries:
    def test_user_cities_with_counts(self):
        g = _small_graph()
        assert dict(g.user_cities(2, EdgeType.DEPARTURE)) == {0: 2}

    def test_city_users(self):
        g = _small_graph()
        assert set(g.city_users(3, EdgeType.ARRIVE)) == {0, 1}

    def test_user_metapath_neighbors_are_direct_cities(self):
        g = _small_graph()
        nbrs = g.metapath_neighbor_cities(NodeType.USER, 0, EdgeType.DEPARTURE)
        assert set(nbrs) == {0, 1}

    def test_city_metapath_neighbors_via_shared_users(self):
        # Figure 2(d): city 3's arrive-neighbours are other cities arrived
        # at by users of city 3 — i.e. city 4 via user1.
        g = _small_graph()
        nbrs = g.metapath_neighbor_cities(NodeType.CITY, 3, EdgeType.ARRIVE)
        assert set(nbrs) == {4}

    def test_city_neighbors_exclude_self(self):
        g = _small_graph()
        nbrs = g.metapath_neighbor_cities(NodeType.CITY, 0, EdgeType.DEPARTURE)
        assert 0 not in nbrs
        # city 1 reachable via user0 who departs from both 0 and 1
        assert 1 in nbrs

    def test_edge_types_are_isolated(self):
        g = _small_graph()
        nbrs = g.metapath_neighbor_cities(NodeType.USER, 0, EdgeType.ARRIVE)
        assert set(nbrs) == {3}  # departure edges invisible here

    def test_higher_order_neighbors(self):
        g = _small_graph()
        second = g.higher_order_neighbor_cities(
            NodeType.USER, 0, EdgeType.ARRIVE, order=2
        )
        # step1: {3}; step2: cities of users who arrive at 3, minus 3 -> {4}
        assert set(second) == {4}

    def test_higher_order_requires_positive(self):
        with pytest.raises(ValueError):
            _small_graph().higher_order_neighbor_cities(
                NodeType.USER, 0, EdgeType.ARRIVE, order=0
            )

    def test_spatial_weights_cached_and_row_stochastic(self):
        g = _small_graph()
        w1 = g.spatial_weights
        assert w1 is g.spatial_weights
        np.testing.assert_allclose(w1.sum(axis=1), 1.0)


class TestNetworkxExport:
    def test_node_and_edge_counts(self):
        g = _small_graph()
        nx_graph = g.to_networkx()
        assert len(nx_graph.nodes) == 3 + 5
        # Multigraph edges are unique (user, city, type) triples.
        assert len(nx_graph.edges) == 6

    def test_node_attributes(self):
        nx_graph = _small_graph().to_networkx()
        assert nx_graph.nodes[("city", 0)]["node_type"] == "city"
        assert "lon" in nx_graph.nodes[("city", 0)]
