"""FaultInjector: seeded determinism, arming, healing, activation scope."""

import pytest

from repro.resilience import (
    NULL_FAULT_INJECTOR,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    get_fault_injector,
    use_fault_injector,
)


def outcomes(injector: FaultInjector, site: str, n: int) -> list[bool]:
    """True where a call to ``site`` raised."""
    result = []
    for _ in range(n):
        try:
            injector.inject(site)
        except InjectedFault:
            result.append(True)
        else:
            result.append(False)
    return result


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(error_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(latency_ms=-1.0)
        with pytest.raises(ValueError):
            FaultSpec(after_calls=-1)


class TestFaultInjector:
    def test_same_seed_same_fault_stream(self):
        a = FaultInjector(seed=3).add("x", error_rate=0.5)
        b = FaultInjector(seed=3).add("x", error_rate=0.5)
        assert outcomes(a, "x", 50) == outcomes(b, "x", 50)

    def test_error_rate_one_always_raises(self):
        chaos = FaultInjector(seed=0).add("x", error_rate=1.0)
        assert outcomes(chaos, "x", 5) == [True] * 5
        assert chaos.faults("x") == 5
        assert chaos.calls("x") == 5

    def test_unconfigured_site_is_untouched(self):
        chaos = FaultInjector(seed=0).add("x", error_rate=1.0)
        chaos.inject("y")  # no spec, no effect
        assert chaos.calls("y") == 0

    def test_after_calls_arms_late(self):
        chaos = FaultInjector(seed=0).add(
            "x", error_rate=1.0, after_calls=3
        )
        assert outcomes(chaos, "x", 5) == [False, False, False, True, True]

    def test_max_faults_heals(self):
        chaos = FaultInjector(seed=0).add("x", error_rate=1.0, max_faults=2)
        assert outcomes(chaos, "x", 5) == [True, True, False, False, False]

    def test_latency_injection_counts(self):
        slept = []
        chaos = FaultInjector(seed=0, sleep=slept.append)
        chaos.add("x", latency_ms=7.0, latency_rate=1.0)
        chaos.inject("x")
        assert slept == [0.007]

    def test_injected_fault_carries_site(self):
        chaos = FaultInjector(seed=0).add("ps.push", error_rate=1.0)
        with pytest.raises(InjectedFault) as excinfo:
            chaos.inject("ps.push")
        assert excinfo.value.site == "ps.push"


class TestActivation:
    def test_default_is_null_and_inert(self):
        assert get_fault_injector() is NULL_FAULT_INJECTOR
        get_fault_injector().inject("anything")  # never raises

    def test_null_injector_rejects_configuration(self):
        with pytest.raises(RuntimeError):
            NULL_FAULT_INJECTOR.add("x", error_rate=1.0)

    def test_use_scopes_activation(self):
        chaos = FaultInjector(seed=0).add("x", error_rate=1.0)
        with use_fault_injector(chaos):
            assert get_fault_injector() is chaos
            with pytest.raises(InjectedFault):
                get_fault_injector().inject("x")
        assert get_fault_injector() is NULL_FAULT_INJECTOR

    def test_spec_and_kwargs_are_exclusive(self):
        chaos = FaultInjector(seed=0)
        with pytest.raises(TypeError):
            chaos.add("x", FaultSpec(error_rate=1.0), error_rate=0.5)
