"""Typed fallback policies and the guarded executor."""

import pytest

from repro.obs import use_registry
from repro.resilience import (
    CircuitBreaker,
    Deadline,
    FallbackEvent,
    FallbackPolicy,
    RetryPolicy,
    record_fallback,
    run_with_fallback,
)
from tests.resilience.test_deadline import FakeClock


def primary_ok():
    return "primary"


def primary_boom():
    raise ConnectionError("down")


def degraded():
    return "degraded"


class TestRecordFallback:
    def test_counts_aggregate_and_per_site(self):
        with use_registry() as registry:
            event = record_fallback("rank", "breaker_open")
        assert event == FallbackEvent(site="rank", reason="breaker_open")
        assert str(event) == "rank:breaker_open"
        assert registry.counter("resilience.fallbacks").value == 1
        assert registry.counter(
            "resilience.fallbacks",
            labels={"site": "rank", "reason": "breaker_open"},
        ).value == 1


class TestRunWithFallback:
    def test_primary_success_no_event(self):
        policy = FallbackPolicy(site="rank", fallback=degraded)
        value, event = run_with_fallback(policy, primary_ok)
        assert value == "primary"
        assert event is None

    def test_failure_degrades_with_reason(self):
        policy = FallbackPolicy(site="rank", fallback=degraded)
        value, event = run_with_fallback(policy, primary_boom)
        assert value == "degraded"
        assert event.reason == "error:ConnectionError"

    def test_retry_reason_names_underlying_error(self):
        policy = FallbackPolicy(
            site="rank", fallback=degraded,
            retry=RetryPolicy(max_attempts=2),
        )
        value, event = run_with_fallback(policy, primary_boom)
        assert value == "degraded"
        assert event.reason == "error:ConnectionError"

    def test_expired_deadline_short_circuits(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        clock.advance_ms(6)
        calls = []
        policy = FallbackPolicy(site="rank", fallback=degraded)
        value, event = run_with_fallback(
            policy, lambda: calls.append(1), deadline=deadline
        )
        assert value == "degraded"
        assert event.reason == "deadline"
        assert not calls  # the primary never ran

    def test_open_breaker_skips_primary(self):
        breaker = CircuitBreaker("rank", min_calls=1,
                                 failure_threshold=0.5, clock=FakeClock())
        breaker.record_failure()
        calls = []
        policy = FallbackPolicy(site="rank", fallback=degraded,
                                breaker=breaker)
        value, event = run_with_fallback(policy, lambda: calls.append(1))
        assert value == "degraded"
        assert event.reason == "breaker_open"
        assert not calls

    def test_breaker_sees_post_retry_outcomes(self):
        breaker = CircuitBreaker("rank", min_calls=2,
                                 failure_threshold=0.5, clock=FakeClock())
        policy = FallbackPolicy(
            site="rank", fallback=degraded,
            retry=RetryPolicy(max_attempts=2), breaker=breaker,
        )
        run_with_fallback(policy, primary_boom)
        run_with_fallback(policy, primary_boom)
        assert breaker.state == "open"
        # Third request skips the primary entirely.
        value, event = run_with_fallback(policy, primary_boom)
        assert (value, event.reason) == ("degraded", "breaker_open")
