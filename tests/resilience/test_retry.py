"""retry_call: backoff, jitter determinism, deadline interaction."""

import numpy as np
import pytest

from repro.obs import use_registry
from repro.resilience import (
    Deadline,
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
    retry_call,
)
from tests.resilience.test_deadline import FakeClock


class Flaky:
    """Fails the first ``failures`` calls, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionError(f"boom {self.calls}")
        return "ok"


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_ms=10.0, multiplier=2.0,
                             max_delay_ms=35.0, jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.delay_ms(a, rng) for a in (1, 2, 3, 4)]
        assert delays == [10.0, 20.0, 35.0, 35.0]

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_delay_ms=10.0, jitter=0.5, seed=7)
        a = [policy.delay_ms(1, np.random.default_rng(7)) for _ in range(3)]
        assert a[0] == a[1] == a[2]
        assert a[0] != 10.0  # jitter actually applied


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        flaky = Flaky(failures=2)
        result = retry_call(flaky, policy=RetryPolicy(max_attempts=3),
                            sleep=None)
        assert result == "ok"
        assert flaky.calls == 3

    def test_exhaustion_raises_with_last_error(self):
        flaky = Flaky(failures=99)
        with pytest.raises(RetriesExhausted) as excinfo:
            retry_call(flaky, policy=RetryPolicy(max_attempts=3),
                       site="ps.push", sleep=None)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last, ConnectionError)
        assert flaky.calls == 3

    def test_non_retryable_error_propagates_immediately(self):
        calls = []

        def bad():
            calls.append(1)
            raise TypeError("not transient")

        with pytest.raises(TypeError):
            retry_call(bad, retry_on=(ConnectionError,), sleep=None)
        assert len(calls) == 1

    def test_counters_recorded(self):
        flaky = Flaky(failures=1)
        with use_registry() as registry:
            retry_call(flaky, policy=RetryPolicy(max_attempts=2),
                       site="demo", sleep=None)
        assert registry.counter(
            "resilience.retries", labels={"site": "demo"}
        ).value == 1
        assert registry.counter(
            "resilience.retry_successes", labels={"site": "demo"}
        ).value == 1

    def test_expired_deadline_stops_retrying(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.advance_ms(11)
        flaky = Flaky(failures=0)
        with pytest.raises(DeadlineExceeded):
            retry_call(flaky, deadline=deadline, sleep=None)
        assert flaky.calls == 0

    def test_no_budget_for_backoff_raises(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        flaky = Flaky(failures=99)
        # First attempt allowed; backoff (>= 5ms with jitter 0) exceeds
        # the remaining budget, so the loop stops with DeadlineExceeded.
        with pytest.raises(DeadlineExceeded):
            retry_call(
                flaky,
                policy=RetryPolicy(max_attempts=5, base_delay_ms=10.0,
                                   jitter=0.0),
                deadline=deadline,
                sleep=None,
            )
        assert flaky.calls == 1
