"""CircuitBreaker state machine: closed → open → half-open → closed."""

import pytest

from repro.obs import use_registry
from repro.resilience import CLOSED, HALF_OPEN, OPEN, BreakerOpen, CircuitBreaker
from tests.resilience.test_deadline import FakeClock


def make_breaker(clock=None, **kwargs):
    kwargs.setdefault("window", 10)
    kwargs.setdefault("failure_threshold", 0.5)
    kwargs.setdefault("min_calls", 4)
    kwargs.setdefault("recovery_s", 30.0)
    return CircuitBreaker("rank", clock=clock or FakeClock(), **kwargs)


class TestStateMachine:
    def test_starts_closed_and_allows(self):
        breaker = make_breaker()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_at_threshold_over_window(self):
        breaker = make_breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED  # below min_calls
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_successes_keep_it_closed(self):
        breaker = make_breaker()
        for _ in range(20):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.failure_rate() < 0.5

    def test_half_open_after_cooldown_then_closes_on_success(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        clock.now += 31.0
        assert breaker.state == HALF_OPEN
        assert breaker.allow()          # the single probe
        assert not breaker.allow()      # no second probe
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failure_rate() == 0.0

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = make_breaker(clock=clock)
        for _ in range(4):
            breaker.record_failure()
        clock.now += 31.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", window=0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker("x", min_calls=0)


class TestCallWrapper:
    def test_call_records_and_raises_breaker_open(self):
        breaker = make_breaker(min_calls=2, failure_threshold=0.5)

        def boom():
            raise ValueError("nope")

        for _ in range(2):
            with pytest.raises(ValueError):
                breaker.call(boom)
        assert breaker.state == OPEN
        with pytest.raises(BreakerOpen):
            breaker.call(lambda: "never runs")

    def test_obs_counters_and_gauge(self):
        with use_registry() as registry:
            breaker = make_breaker(min_calls=2)
            breaker.record_failure()
            breaker.record_failure()
        assert registry.counter("resilience.breaker_open").value == 1
        assert registry.counter(
            "resilience.breaker_open", labels={"site": "rank"}
        ).value == 1
        assert registry.gauge(
            "resilience.breaker_state", labels={"site": "rank"}
        ).value == 2.0
