"""Deadline budgets, expiry, and per-stage overrun observation."""

import pytest

from repro.obs import use_registry
from repro.resilience import Deadline, DeadlineExceeded


class FakeClock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance_ms(self, ms: float) -> None:
        self.now += ms / 1000.0


class TestDeadline:
    def test_remaining_counts_down(self):
        clock = FakeClock()
        deadline = Deadline(50.0, clock=clock)
        assert deadline.remaining_ms() == pytest.approx(50.0)
        clock.advance_ms(20)
        assert deadline.remaining_ms() == pytest.approx(30.0)
        assert not deadline.expired

    def test_expiry_and_check(self):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.advance_ms(10)
        assert deadline.expired
        assert deadline.remaining_ms() == 0.0
        with pytest.raises(DeadlineExceeded):
            deadline.check("rank")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
        with pytest.raises(ValueError):
            Deadline(-5.0)

    def test_stage_budget_capped_by_remaining(self):
        clock = FakeClock()
        deadline = Deadline(100.0, stage_budgets_ms={"rank": 60.0},
                            clock=clock)
        assert deadline.stage_budget_ms("rank") == pytest.approx(60.0)
        clock.advance_ms(70)
        assert deadline.stage_budget_ms("rank") == pytest.approx(30.0)
        # Unbudgeted stages get whatever remains.
        assert deadline.stage_budget_ms("recall") == pytest.approx(30.0)

    def test_observe_stage_records_overrun(self):
        deadline = Deadline(100.0, stage_budgets_ms={"rank": 10.0})
        with use_registry() as registry:
            assert deadline.observe_stage("rank", 25.0) == pytest.approx(15.0)
            assert deadline.observe_stage("rank", 5.0) == 0.0
            # Stages without a budget never count as overruns.
            assert deadline.observe_stage("recall", 500.0) == 0.0
        histogram = registry.histogram(
            "resilience.stage_overrun_ms", labels={"stage": "rank"}
        )
        assert histogram.count == 1
        assert histogram.max == pytest.approx(15.0)
        assert registry.counter(
            "resilience.deadline_overruns", labels={"stage": "rank"}
        ).value == 1
