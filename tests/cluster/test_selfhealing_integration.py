"""Self-healing with real worker processes: kill, freeze, crash-loop.

These spawn actual ``multiprocessing`` workers and inflict actual
signals — the closest thing to production the test suite gets.  Sizes
and supervision timings are drill-small so the whole module stays in
tens of seconds.
"""

from __future__ import annotations

import dataclasses
import time

import pytest

from repro.cluster import ClusterConfig, ProcessChaos, ServingCluster
from repro.obs import MetricsRegistry, use_registry

CONFIG = ClusterConfig(
    num_workers=3,
    num_users=200,
    num_cities=24,
    seed=3,
    request_timeout_s=5.0,
    supervise_interval_s=0.1,
    heartbeat_interval_s=0.25,
    heartbeat_timeout_s=0.75,
    heartbeat_stale_s=1.0,
    restart_budget=2,
    restart_backoff_s=0.1,
    restart_backoff_max_s=0.5,
    hedge_delay_ms=50.0,
    breaker_recovery_s=0.5,
)


def wait_for(predicate, timeout_s: float = 60.0, what: str = "condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    pytest.fail(f"timed out waiting for {what}")


def serve_all(client, num_users: int = 30) -> list[dict]:
    return [
        client.recommend({"user_id": user_id, "day": 720, "k": 3})
        for user_id in range(num_users)
    ]


class TestKillAndFreeze:
    @pytest.fixture(scope="class")
    def rig(self):
        registry = MetricsRegistry(default_labels={"process": "gateway"})
        with use_registry(registry), ServingCluster(CONFIG) as cluster:
            client = cluster.client()
            serve_all(client)    # warm every replica's hashed share
            yield cluster, client, registry

    def test_sigkill_worker_is_replaced(self, rig):
        cluster, client, registry = rig
        victim = cluster.handles[0].worker_id
        old_pid = cluster.process_for(victim).pid
        ProcessChaos(cluster).kill(victim)
        wait_for(
            lambda: cluster.supervisor.restarts >= 1,
            what="replacement after SIGKILL",
        )
        new_process = cluster.process_for(victim)
        assert new_process.pid != old_pid
        assert new_process.is_alive()
        assert registry.counter(
            "cluster.worker_deaths",
            labels={"worker": f"w{victim}", "reason": "crash"},
        ).value >= 1
        assert registry.counter("cluster.worker_restarts").value >= 1
        # Every user still gets an answer, including the victim's share.
        responses = serve_all(client)
        assert {r["routed_worker"] for r in responses} >= {victim}

    def test_sigstop_wedged_worker_is_replaced(self, rig):
        cluster, client, registry = rig
        restarts_before = cluster.supervisor.restarts
        victim = cluster.handles[1].worker_id
        old_pid = cluster.process_for(victim).pid
        ProcessChaos(cluster).freeze(victim)
        wait_for(
            lambda: cluster.supervisor.restarts >= restarts_before + 1,
            what="replacement after SIGSTOP",
        )
        assert cluster.process_for(victim).pid != old_pid
        assert registry.counter(
            "cluster.worker_deaths",
            labels={"worker": f"w{victim}", "reason": "wedged"},
        ).value >= 1
        responses = serve_all(client)
        assert {r["routed_worker"] for r in responses} >= {victim}

    def test_replacement_reports_ready_health(self, rig):
        cluster, _, _ = rig
        health = cluster.gateway.cluster_health()
        assert health["ready"] == CONFIG.num_workers
        assert health["workers"] == CONFIG.num_workers


class TestCrashLoopBudget:
    def test_crash_loop_exhausts_budget_and_cluster_keeps_serving(self):
        """The deliberate crash loop: worker 0 dies mid-request on its
        Nth ranking, and so does every replacement (same config, same
        fault site).  The budget runs out, the slot is abandoned, the
        ring shrinks — and clients never see an error."""
        config = dataclasses.replace(
            CONFIG,
            num_workers=2,
            crash_after_requests=3,
            crash_worker_id=0,
            restart_budget=1,
        )
        registry = MetricsRegistry(default_labels={"process": "gateway"})
        with use_registry(registry), ServingCluster(config) as cluster:
            client = cluster.client()
            supervisor = cluster.supervisor

            def pound_until(predicate, what):
                deadline = time.monotonic() + 90.0
                user_id = 0
                while time.monotonic() < deadline:
                    client.recommend(
                        {"user_id": user_id % config.num_users, "day": 720}
                    )
                    user_id += 1
                    if predicate():
                        return
                pytest.fail(f"timed out waiting for {what}")

            # Crash #1 (after 3 rankings on w0) consumes the whole
            # budget on replacement; crash #2 abandons the slot.
            pound_until(
                lambda: 0 in supervisor.status()["abandoned"],
                "the crash-looping slot to be abandoned",
            )
            with cluster.gateway._members_lock:
                names = [h.name for h in cluster.gateway.handles]
            assert names == ["w1"]
            assert registry.counter("cluster.worker_abandoned").value == 1
            assert registry.counter("cluster.worker_restarts").value == 1
            # The shrunken ring serves everything, no errors, w1 only.
            responses = serve_all(client)
            assert {r["routed_worker"] for r in responses} == {1}
