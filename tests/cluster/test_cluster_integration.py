"""End-to-end cluster: real worker processes, real sockets, real drain.

One module-scoped 2-worker cluster serves every test here (boot costs a
couple of seconds per worker); the rolling-drain test intentionally runs
last — it bumps worker 0's model version.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cluster import (
    ClusterConfig,
    ServingCluster,
    WorkerUnavailable,
    http_request_json,
)

CONFIG = ClusterConfig(
    num_workers=2,
    num_users=200,
    num_cities=24,
    seed=0,
    startup_timeout_s=180.0,
    drain_timeout_s=30.0,
)


@pytest.fixture(scope="module")
def cluster():
    with ServingCluster(CONFIG) as running:
        yield running


class TestServing:
    def test_recommend_through_gateway(self, cluster):
        client = cluster.client()
        response = client.recommend({"user_id": 3, "day": 720, "k": 4})
        assert response["user_id"] == 3
        assert len(response["flights"]) == 4
        assert {"origin", "destination", "score"} <= set(
            response["flights"][0]
        )
        assert response["routed_worker"] in (0, 1)
        assert response["attempts"] == 1

    def test_replicas_answer_identically(self, cluster):
        """Same seed -> same weights: any worker can serve any user."""
        payload = {"user_id": 11, "day": 720, "k": 5}
        per_worker = {}
        for handle in cluster.handles:
            answer = handle.client.recommend(payload)
            per_worker[handle.worker_id] = [
                (flight["origin"], flight["destination"])
                for flight in answer["flights"]
            ]
        answers = list(per_worker.values())
        assert answers[0] == answers[1]

    def test_user_affinity_is_stable(self, cluster):
        client = cluster.client()
        routed = {
            client.recommend({"user_id": 42, "day": 720})["routed_worker"]
            for _ in range(4)
        }
        assert len(routed) == 1

    def test_concurrent_traffic_spreads_across_workers(self, cluster):
        client = cluster.client()
        payloads = [
            {"user_id": user_id, "day": 720, "k": 3}
            for user_id in range(40)
        ]
        with ThreadPoolExecutor(max_workers=4) as pool:
            responses = list(pool.map(client.recommend, payloads))
        workers = {response["routed_worker"] for response in responses}
        assert workers == {0, 1}
        assert all(len(response["flights"]) == 3 for response in responses)

    def test_bad_payload_is_a_400_not_a_crash(self, cluster):
        host, port = cluster.gateway_address
        status, body = http_request_json(
            host, port, "POST", "/recommend", {"day": 1}
        )
        assert status == 400
        assert "user_id" in body["error"]

    def test_unknown_route_is_404(self, cluster):
        host, port = cluster.gateway_address
        status, _ = http_request_json(host, port, "GET", "/nope")
        assert status == 404


class TestHealth:
    def test_aggregated_health(self, cluster):
        health = cluster.gateway.cluster_health()
        assert health["workers"] == 2
        assert health["ready"] == 2
        for name in ("w0", "w1"):
            entry = health["per_worker"][name]
            assert entry["ready"] is True
            assert entry["state"] == "ready"
            assert entry["model_version"] >= 1

    def test_worker_counters_carry_worker_label(self, cluster):
        client = cluster.client()
        client.recommend({"user_id": 9, "day": 720})
        health = cluster.gateway.cluster_health()
        labelled = [
            counter
            for entry in health["per_worker"].values()
            for counter in entry["counters"]
            if counter["name"] == "serving.requests"
        ]
        assert labelled, "workers must export serving.requests"
        assert {counter["labels"].get("worker") for counter in labelled} <= {
            "w0", "w1",
        }

    def test_gateway_health_endpoint_over_http(self, cluster):
        host, port = cluster.gateway_address
        status, body = http_request_json(host, port, "GET", "/health")
        assert status == 200
        assert body["workers"] == 2


class TestRollingDrain:
    def test_draining_worker_refuses_direct_requests(self, cluster):
        """A drained-but-not-reloaded worker 503s so the gateway retries.

        Uses worker 1 directly (not through the gateway) and reloads it
        back to ready before returning.
        """
        handle = cluster.handles[1]
        assert handle.client.drain(timeout_s=10.0)["drained"] is True
        with pytest.raises(WorkerUnavailable):
            handle.client.recommend({"user_id": 1, "day": 720})
        reloaded = handle.client.reload(timeout_s=15.0)
        assert reloaded["state"] == "ready"
        assert reloaded["model_version"] == 2
        # Back in service.
        answer = handle.client.recommend({"user_id": 1, "day": 720})
        assert answer["model_version"] == 2

    def test_rolling_restart_under_traffic_loses_nothing(self, cluster):
        stop = threading.Event()
        results = {"served": 0, "failed": 0}
        lock = threading.Lock()

        def pound():
            client = cluster.client()
            user_id = 0
            while not stop.is_set():
                user_id += 1
                try:
                    client.recommend(
                        {"user_id": user_id % CONFIG.num_users, "day": 720}
                    )
                    ok = True
                except Exception:
                    ok = False
                with lock:
                    results["served"] += 1
                    results["failed"] += 0 if ok else 1

        threads = [threading.Thread(target=pound) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            reports = cluster.rolling_restart(worker_ids=[0])
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=20.0)
        assert reports[0]["drained"] is True
        assert reports[0]["model_version"] >= 2
        assert results["served"] > 0
        assert results["failed"] == 0, (
            f"{results['failed']}/{results['served']} requests failed "
            f"during the rolling drain"
        )
        # Both workers took traffic again after readmission.
        health = cluster.gateway.cluster_health()
        assert health["ready"] == 2
