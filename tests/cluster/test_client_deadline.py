"""Per-attempt socket deadlines: a wedged worker costs bounded time.

A SIGSTOP'd (or otherwise hung) worker looks like this from the
gateway's side: the kernel still completes the TCP handshake off the
listen backlog, but the application never writes a byte back.  Every
test here talks to a deliberately unresponsive listener and asserts the
client gives up within the per-attempt deadline instead of hanging a
gateway thread.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.cluster import WorkerClient, WorkerUnavailable

#: Generous wall-clock ceiling for a sub-second deadline to fire.
BOUND_S = 3.0


@pytest.fixture
def silent_server():
    """Accepts connections, reads requests, never replies."""
    server = socket.socket()
    server.bind(("127.0.0.1", 0))
    server.listen(8)
    server.settimeout(0.1)
    stop = threading.Event()
    accepted: list[socket.socket] = []

    def accept_loop():
        while not stop.is_set():
            try:
                conn, _ = server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            accepted.append(conn)

    thread = threading.Thread(target=accept_loop, daemon=True)
    thread.start()
    yield server.getsockname()
    stop.set()
    thread.join(timeout=2.0)
    for conn in accepted:
        conn.close()
    server.close()


class TestPerAttemptDeadline:
    def test_explicit_timeout_bounds_a_fresh_connection(self, silent_server):
        host, port = silent_server
        client = WorkerClient(host, port, timeout_s=30.0)
        start = time.monotonic()
        with pytest.raises(WorkerUnavailable, match="[Tt]ime"):
            client.request("GET", "/health", timeout_s=0.3)
        assert time.monotonic() - start < BOUND_S

    def test_no_timeout_falls_back_to_client_default(self, silent_server):
        """``timeout_s=None`` must mean the client default, never
        "wait forever"."""
        host, port = silent_server
        client = WorkerClient(host, port, timeout_s=0.3)
        start = time.monotonic()
        with pytest.raises(WorkerUnavailable, match="[Tt]ime"):
            client.request("GET", "/health")
        assert time.monotonic() - start < BOUND_S

    def test_keepalive_socket_gets_the_per_attempt_deadline(self):
        """The regression: ``connection.timeout`` only applies at connect
        time, so a shorter per-attempt deadline must be pushed onto the
        already-open keep-alive socket too."""
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()
        conns: list[socket.socket] = []

        def serve_once_then_go_silent():
            conn, _ = server.accept()
            conns.append(conn)
            conn.recv(65536)
            conn.sendall(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 2\r\n\r\n{}"
            )
            # The second request on the same socket gets no reply.
            try:
                conn.recv(65536)
            except OSError:
                pass

        thread = threading.Thread(
            target=serve_once_then_go_silent, daemon=True
        )
        thread.start()
        try:
            client = WorkerClient(host, port, timeout_s=30.0)
            status, body = client.request("GET", "/health", timeout_s=5.0)
            assert status == 200 and body == {}
            start = time.monotonic()
            with pytest.raises(WorkerUnavailable, match="[Tt]ime"):
                client.request("GET", "/health", timeout_s=0.3)
            assert time.monotonic() - start < BOUND_S
        finally:
            for conn in conns:
                conn.close()
            server.close()
            thread.join(timeout=2.0)
