"""ConsistentHashRing: stability, spread, and minimal movement."""

from __future__ import annotations

import pytest

from repro.cluster import ConsistentHashRing


class TestLookup:
    def test_deterministic_across_instances(self):
        nodes = ["w0", "w1", "w2"]
        ring_a = ConsistentHashRing(nodes)
        ring_b = ConsistentHashRing(reversed(nodes))
        for key in range(500):
            assert ring_a.lookup(key) == ring_b.lookup(key)

    def test_every_node_gets_keys(self):
        ring = ConsistentHashRing(["w0", "w1", "w2", "w3"])
        owners = {ring.lookup(key) for key in range(2000)}
        assert owners == {"w0", "w1", "w2", "w3"}

    def test_spread_is_roughly_balanced(self):
        ring = ConsistentHashRing(["w0", "w1", "w2", "w3"], vnodes=128)
        counts = {name: 0 for name in ring.nodes}
        total = 4000
        for key in range(total):
            counts[ring.lookup(key)] += 1
        for count in counts.values():
            # Each of 4 nodes owns 25% in expectation; allow wide noise.
            assert 0.10 * total < count < 0.45 * total

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            ConsistentHashRing([]).lookup(7)

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(["w0"], vnodes=0)


class TestMembershipChange:
    def test_removal_only_remaps_the_removed_nodes_keys(self):
        ring = ConsistentHashRing(["w0", "w1", "w2"])
        before = {key: ring.lookup(key) for key in range(1000)}
        ring.remove("w1")
        for key, owner in before.items():
            if owner != "w1":
                # Keys owned by surviving nodes must not move — the
                # property that keeps placement stable through a roll.
                assert ring.lookup(key) == owner
            else:
                assert ring.lookup(key) in ("w0", "w2")

    def test_add_is_idempotent_and_remove_unknown_is_noop(self):
        ring = ConsistentHashRing(["w0"])
        ring.add("w0")
        ring.remove("missing")
        assert ring.nodes == {"w0"}
        assert len(ring._positions) == ring.vnodes


class TestPreference:
    def test_starts_with_lookup_owner_and_covers_universe(self):
        universe = ["w0", "w1", "w2", "w3"]
        ring = ConsistentHashRing(universe)
        for key in range(200):
            order = ring.preference(key, universe)
            assert order[0] == ring.lookup(key)
            assert sorted(order) == sorted(universe)

    def test_offring_members_go_last(self):
        ring = ConsistentHashRing(["w0", "w1"])
        order = ring.preference(42, ["w0", "w1", "ghost"])
        assert order[-1] == "ghost"
