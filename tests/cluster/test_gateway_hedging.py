"""Hedged requests + self-healing membership, with scripted clients."""

from __future__ import annotations

import time

import pytest

from repro.cluster import (
    ClusterConfig,
    Gateway,
    GatewayError,
    WorkerHandle,
    WorkerUnavailable,
)
from repro.obs import MetricsRegistry, use_registry

CONFIG = ClusterConfig(
    num_workers=3,
    hedge_delay_ms=40.0,
    hedge_min_delay_ms=5.0,
    hedge_min_samples=10_000,     # keep the static delay in force
    breaker_min_calls=2,
    breaker_window=4,
    breaker_recovery_s=60.0,
    request_timeout_s=5.0,
)


class ScriptedClient:
    """Answers after ``delay_s``; fails the first ``fail_times`` calls."""

    def __init__(self, worker_id: int, delay_s: float = 0.0,
                 fail_times: int = 0):
        self.worker_id = worker_id
        self.delay_s = delay_s
        self.fail_times = fail_times
        self.calls = 0

    def recommend(self, payload, timeout_s=None):
        self.calls += 1
        if self.fail_times > 0:
            self.fail_times -= 1
            raise WorkerUnavailable(f"fake:{self.worker_id}", "down")
        if self.delay_s:
            time.sleep(self.delay_s)
        return {"worker_id": self.worker_id, "user_id": payload["user_id"],
                "flights": [], "degraded": False, "fallbacks": []}

    def health(self, timeout_s=None):
        return {"worker_id": self.worker_id, "ready": True,
                "state": "ready", "in_flight": 0}

    def close(self):
        pass


def make_gateway(clients, config=CONFIG):
    handles = [
        WorkerHandle(client.worker_id, client, config) for client in clients
    ]
    return Gateway(handles, config), handles


class TestHedging:
    def test_hedge_races_a_replica_past_a_slow_primary(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [ScriptedClient(i) for i in range(3)]
            gateway, _ = make_gateway(clients)
            preferred = gateway.route_order(7)[0]
            preferred.client.delay_s = 1.0   # far beyond the hedge delay
            start = time.perf_counter()
            response = gateway.recommend({"user_id": 7})
            elapsed = time.perf_counter() - start
            assert response["routed_worker"] != preferred.worker_id
            assert response["attempts"] == 2
            # Well under the slow primary; the hedge won the race.
            assert elapsed < 0.8
            assert registry.counter("gateway.hedged").value == 1
            assert registry.counter("gateway.hedge_wins").value == 1

    def test_fast_primary_never_hedges(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [ScriptedClient(i) for i in range(3)]
            gateway, _ = make_gateway(clients)
            for user_id in range(10):
                gateway.recommend({"user_id": user_id})
            assert registry.counter("gateway.hedged").value == 0

    def test_hedge_disabled_waits_out_the_primary(self):
        import dataclasses

        config = dataclasses.replace(CONFIG, hedge_enabled=False)
        with use_registry(MetricsRegistry()) as registry:
            clients = [ScriptedClient(i) for i in range(3)]
            gateway, _ = make_gateway(clients, config)
            preferred = gateway.route_order(7)[0]
            preferred.client.delay_s = 0.15
            response = gateway.recommend({"user_id": 7})
            assert response["routed_worker"] == preferred.worker_id
            assert registry.counter("gateway.hedged").value == 0

    def test_slow_then_failing_primary_still_succeeds(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [ScriptedClient(i) for i in range(3)]
            gateway, _ = make_gateway(clients)
            preferred = gateway.route_order(7)[0]
            preferred.client.fail_times = 1
            preferred.client.delay_s = 0.2   # slow *and* doomed
            response = gateway.recommend({"user_id": 7})
            assert response["worker_id"] != preferred.worker_id
            assert registry.counter("gateway.routed").value == 1


class TestAllWorkersDown:
    def test_fast_typed_error_not_a_hang(self):
        """Satellite contract: every worker down means a *prompt typed*
        failure (503 via handle_recommend), never a hang or a raw
        ConnectionRefusedError leaking to the caller."""
        with use_registry(MetricsRegistry()) as registry:
            clients = [
                ScriptedClient(i, fail_times=10 ** 9) for i in range(2)
            ]
            gateway, _ = make_gateway(clients)
            start = time.perf_counter()
            for user_id in range(10):
                status, body = gateway.handle_recommend({"user_id": user_id})
                assert status == 503
                assert "no replica available" in body["error"]
            elapsed = time.perf_counter() - start
            assert elapsed < 2.0
            assert registry.counter("gateway.rejected").value == 10

    def test_recovers_as_soon_as_any_worker_returns(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [
                ScriptedClient(i, fail_times=10 ** 9) for i in range(2)
            ]
            gateway, handles = make_gateway(clients)
            for user_id in range(10):
                status, _ = gateway.handle_recommend({"user_id": user_id})
                assert status == 503
            # Both breakers are open by now; the forced probe is what
            # keeps testing the water on every request.
            assert {handle.breaker.state for handle in handles} == {"open"}
            assert registry.counter("gateway.breaker_forced").value > 0
            healed = gateway.route_order(3)[0]
            healed.client.fail_times = 0
            status, body = gateway.handle_recommend({"user_id": 3})
            assert status == 200
            assert body["routed_worker"] == healed.worker_id


class TestMembership:
    def test_replace_worker_swaps_client_and_resets_breaker(self):
        with use_registry(MetricsRegistry()):
            clients = [ScriptedClient(0, fail_times=10 ** 9),
                       ScriptedClient(1)]
            gateway, handles = make_gateway(clients)
            for user_id in range(10):
                gateway.recommend({"user_id": user_id})
            assert handles[0].breaker.state == "open"
            gateway.exclude(0)
            replacement = ScriptedClient(0)
            gateway.replace_worker(0, replacement)
            assert handles[0].client is replacement
            assert handles[0].breaker.state == "closed"
            assert handles[0].excluded is False
            # The replacement serves its hashed share again.
            served = {
                gateway.recommend({"user_id": user_id})["routed_worker"]
                for user_id in range(30)
            }
            assert served == {0, 1}

    def test_replace_worker_preserves_ring_placement(self):
        with use_registry(MetricsRegistry()):
            clients = [ScriptedClient(i) for i in range(3)]
            gateway, _ = make_gateway(clients)
            before = {
                user_id: gateway.route_order(user_id)[0].name
                for user_id in range(50)
            }
            gateway.replace_worker(1, ScriptedClient(1))
            after = {
                user_id: gateway.route_order(user_id)[0].name
                for user_id in range(50)
            }
            assert before == after   # same name, same vnodes: zero remap

    def test_remove_worker_shrinks_ring(self):
        with use_registry(MetricsRegistry()):
            clients = [ScriptedClient(i) for i in range(3)]
            gateway, _ = make_gateway(clients)
            gateway.remove_worker(2)
            with gateway._members_lock:
                assert sorted(h.name for h in gateway.handles) == \
                    ["w0", "w1"]
            for user_id in range(20):
                assert gateway.recommend(
                    {"user_id": user_id}
                )["routed_worker"] in (0, 1)

    def test_remove_last_worker_refused(self):
        with use_registry(MetricsRegistry()):
            gateway, _ = make_gateway([ScriptedClient(0)])
            with pytest.raises(RuntimeError, match="last worker"):
                gateway.remove_worker(0)
            with gateway._members_lock:
                assert [h.name for h in gateway.handles] == ["w0"]

    def test_remove_unknown_worker_raises(self):
        with use_registry(MetricsRegistry()):
            gateway, _ = make_gateway([ScriptedClient(0), ScriptedClient(1)])
            with pytest.raises(KeyError):
                gateway.remove_worker(7)
