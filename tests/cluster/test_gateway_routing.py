"""Gateway routing policy with scripted fake workers (no processes)."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    Gateway,
    GatewayError,
    WorkerHandle,
    WorkerUnavailable,
)
from repro.obs import MetricsRegistry, use_registry

CONFIG = ClusterConfig(num_workers=3, breaker_min_calls=2,
                       breaker_window=4, breaker_recovery_s=60.0)


class FakeClient:
    """Scripted worker client: always unavailable (the dead replica)."""

    def __init__(self, worker_id: int, fail_times: int = 0):
        self.worker_id = worker_id
        self.fail_times = fail_times
        self.calls = 0

    def recommend(self, payload, timeout_s=None):
        self.calls += 1
        raise WorkerUnavailable(f"fake:{self.worker_id}", "draining")

    def health(self, timeout_s=None):
        return {"worker_id": self.worker_id, "ready": True,
                "state": "ready", "in_flight": 0}


class AnsweringClient(FakeClient):
    """Answers after failing the first ``fail_times`` calls."""

    def recommend(self, payload, timeout_s=None):
        self.calls += 1
        if self.fail_times > 0:
            self.fail_times -= 1
            raise WorkerUnavailable(f"fake:{self.worker_id}", "draining")
        return {"worker_id": self.worker_id, "user_id": payload["user_id"],
                "flights": [], "degraded": False, "fallbacks": []}


def make_gateway(clients):
    handles = [
        WorkerHandle(client.worker_id, client, CONFIG) for client in clients
    ]
    return Gateway(handles, CONFIG), handles


class TestRouting:
    def test_prefers_consistent_hash_owner(self):
        clients = [AnsweringClient(i) for i in range(3)]
        gateway, _ = make_gateway(clients)
        for user_id in range(50):
            expected = gateway.ring.lookup(user_id)
            order = gateway.route_order(user_id)
            assert order[0].name == expected

    def test_same_user_sticks_to_same_worker(self):
        clients = [AnsweringClient(i) for i in range(3)]
        gateway, _ = make_gateway(clients)
        first = gateway.recommend({"user_id": 7})["routed_worker"]
        for _ in range(5):
            assert gateway.recommend({"user_id": 7})["routed_worker"] == first

    def test_requires_user_id(self):
        gateway, _ = make_gateway([AnsweringClient(0)])
        with pytest.raises(ValueError, match="user_id"):
            gateway.recommend({"day": 1})

    def test_least_loaded_fallback_order(self):
        clients = [AnsweringClient(i) for i in range(3)]
        gateway, handles = make_gateway(clients)
        preferred = gateway.route_order(7)[0]
        others = [handle for handle in handles if handle is not preferred]
        # Load up one replica: the idle one must be tried first on retry.
        others[0].begin()
        others[0].begin()
        order = gateway.route_order(7)
        assert order[0] is preferred
        assert order[1] is others[1]
        assert order[2] is others[0]
        others[0].end()
        others[0].end()


class TestRetries:
    def test_retries_unavailable_worker_against_replica(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [AnsweringClient(i) for i in range(3)]
            gateway, _ = make_gateway(clients)
            preferred = gateway.route_order(7)[0]
            preferred.client.fail_times = 1
            response = gateway.recommend({"user_id": 7})
            assert response["routed_worker"] != preferred.worker_id
            assert response["attempts"] == 2
            assert registry.counter("gateway.retried").value == 1
            assert registry.counter(
                "gateway.worker_unready",
                labels={"worker": preferred.name, "reason": "unavailable"},
            ).value == 1

    def test_excluded_worker_is_skipped_without_an_attempt(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [AnsweringClient(i) for i in range(2)]
            gateway, _ = make_gateway(clients)
            preferred = gateway.route_order(3)[0]
            gateway.exclude(preferred.worker_id)
            response = gateway.recommend({"user_id": 3})
            assert response["routed_worker"] != preferred.worker_id
            assert preferred.client.calls == 0
            # A skip is not a retry: the first *attempt* succeeded.
            assert response["attempts"] == 1
            assert registry.counter("gateway.retried").value == 0

    def test_breaker_opens_after_repeated_failures_then_readmit_resets(self):
        clients = [AnsweringClient(0, fail_times=99), AnsweringClient(1)]
        gateway, handles = make_gateway(clients)
        bad = handles[0]
        for user_id in range(20):
            gateway.recommend({"user_id": user_id})
        assert bad.breaker.state == "open"
        calls_when_open = bad.client.calls
        for user_id in range(20):
            gateway.recommend({"user_id": user_id})
        # Tripped breaker short-circuits: no further wire calls.
        assert bad.client.calls == calls_when_open
        gateway.readmit(0)
        assert bad.breaker.state == "closed"

    def test_all_replicas_down_raises_gateway_error(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [FakeClient(i) for i in range(2)]
            gateway, _ = make_gateway(clients)
            with pytest.raises(GatewayError, match="no replica available"):
                gateway.recommend({"user_id": 1})
            assert registry.counter("gateway.rejected").value == 1

    def test_routed_counters_label_the_serving_worker(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [AnsweringClient(i) for i in range(2)]
            gateway, _ = make_gateway(clients)
            for user_id in range(10):
                gateway.recommend({"user_id": user_id})
            total = registry.counter("gateway.routed").value
            per_worker = sum(
                registry.counter(
                    "gateway.routed", labels={"worker": f"w{i}"}
                ).value
                for i in range(2)
            )
            assert total == 10 and per_worker == 10


class TestHealthAggregation:
    def test_aggregates_ready_and_marks_excluded(self):
        clients = [AnsweringClient(i) for i in range(3)]
        gateway, _ = make_gateway(clients)
        gateway.exclude(1)
        health = gateway.cluster_health()
        assert health["workers"] == 3
        assert health["ready"] == 2     # excluded workers don't count
        assert health["per_worker"]["w1"]["excluded"] is True
        assert set(health["gateway"]) >= {
            "routed", "retried", "worker_unready", "rejected", "inflight",
        }

    def test_unreachable_worker_reports_not_ready(self):
        class DeadClient(FakeClient):
            def health(self, timeout_s=None):
                raise WorkerUnavailable("fake:dead", "ConnectionRefused")

        gateway, _ = make_gateway([AnsweringClient(0), DeadClient(1)])
        health = gateway.cluster_health()
        assert health["ready"] == 1
        assert health["per_worker"]["w1"]["ready"] is False
        assert "error" in health["per_worker"]["w1"]
