"""Supervision logic with fakes and a scripted clock (no processes)."""

from __future__ import annotations

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterStartupError,
    ClusterSupervisor,
    Gateway,
    RestartBudget,
    WorkerHandle,
    WorkerUnavailable,
)
from repro.obs import MetricsRegistry, use_registry

CONFIG = ClusterConfig(
    num_workers=2,
    supervise_interval_s=0.2,
    heartbeat_interval_s=1.0,
    heartbeat_timeout_s=1.0,
    heartbeat_stale_s=3.0,
    restart_budget=2,
    restart_backoff_s=1.0,
    restart_backoff_max_s=4.0,
)


class HealthyClient:
    """Scripted worker client that always answers."""

    def __init__(self, worker_id: int):
        self.worker_id = worker_id
        self.calls = 0
        self.closed = False

    def recommend(self, payload, timeout_s=None):
        self.calls += 1
        return {"worker_id": self.worker_id, "user_id": payload["user_id"],
                "flights": [], "degraded": False, "fallbacks": []}

    def health(self, timeout_s=None):
        return {"worker_id": self.worker_id, "ready": True,
                "state": "ready", "in_flight": 0}

    def close(self):
        self.closed = True


class WedgedClient(HealthyClient):
    """Alive at the process level, never answers a health probe."""

    def health(self, timeout_s=None):
        raise WorkerUnavailable(f"fake:{self.worker_id}", "timed out")


class FakeProcess:
    def __init__(self, alive: bool = True, exitcode: int | None = None):
        self.alive = alive
        self.exitcode = exitcode
        self.pid = 12345

    def is_alive(self) -> bool:
        return self.alive


class FakeCluster:
    """Just enough ServingCluster surface for the supervisor."""

    def __init__(self, gateway: Gateway, config: ClusterConfig):
        self.gateway = gateway
        self.config = config
        self.processes: dict[int, FakeProcess] = {}
        self.respawn_calls: list[int] = []
        self.respawn_error: Exception | None = None

    def process_for(self, worker_id: int):
        return self.processes.get(worker_id)

    def respawn_worker(self, worker_id: int):
        self.respawn_calls.append(worker_id)
        if self.respawn_error is not None:
            raise self.respawn_error
        self.processes[worker_id] = FakeProcess()
        return HealthyClient(worker_id)


def make_rig(clients=None, config=CONFIG):
    clients = clients or [HealthyClient(0), HealthyClient(1)]
    handles = [
        WorkerHandle(client.worker_id, client, config) for client in clients
    ]
    gateway = Gateway(handles, config)
    cluster = FakeCluster(gateway, config)
    cluster.processes = {
        client.worker_id: FakeProcess() for client in clients
    }
    clock = [0.0]
    supervisor = ClusterSupervisor(cluster, time_source=lambda: clock[0])
    return supervisor, cluster, gateway, handles, clock


class TestRestartBudget:
    def test_backoff_doubles_up_to_cap(self):
        budget = RestartBudget(budget=5, backoff_s=1.0, backoff_max_s=4.0)
        delays = []
        for _ in range(5):
            delays.append(budget.next_delay_s())
            budget.consume()
        assert delays == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_exhausted_budget_yields_none(self):
        budget = RestartBudget(budget=1, backoff_s=1.0, backoff_max_s=4.0)
        assert budget.next_delay_s() == 1.0
        budget.consume()
        assert budget.exhausted
        assert budget.next_delay_s() is None

    def test_zero_budget_abandons_immediately(self):
        budget = RestartBudget(budget=0, backoff_s=1.0, backoff_max_s=4.0)
        assert budget.next_delay_s() is None


class TestCrashDetection:
    def test_dead_process_is_excluded_and_scheduled(self):
        with use_registry(MetricsRegistry()) as registry:
            supervisor, cluster, _, handles, _ = make_rig()
            supervisor.tick()           # healthy pass: nothing happens
            assert not supervisor.status()["pending"]
            cluster.processes[0].alive = False
            supervisor.tick()
            assert handles[0].excluded is True
            assert cluster.respawn_calls == []   # backoff first
            assert supervisor.status()["pending"] == [0]
            assert registry.counter(
                "cluster.worker_deaths",
                labels={"worker": "w0", "reason": "crash"},
            ).value == 1

    def test_replacement_spliced_after_backoff_with_fresh_breaker(self):
        with use_registry(MetricsRegistry()) as registry:
            supervisor, cluster, _, handles, clock = make_rig()
            cluster.processes[0].alive = False
            # The dead worker's breaker carries its failure history.
            for _ in range(8):
                handles[0].breaker.record_failure()
            old_client = handles[0].client
            supervisor.tick()
            clock[0] += CONFIG.restart_backoff_s + 0.01
            supervisor.tick()
            assert cluster.respawn_calls == [0]
            assert handles[0].client is not old_client
            assert old_client.closed is True
            # Satellite contract: a fresh replica starts with a closed
            # breaker and zero failure history, and takes traffic.
            assert handles[0].breaker.state == "closed"
            assert handles[0].breaker.allow() is True
            assert handles[0].excluded is False
            assert supervisor.restarts == 1
            assert registry.counter("cluster.worker_restarts").value == 1

    def test_no_respawn_before_backoff_elapses(self):
        with use_registry(MetricsRegistry()):
            supervisor, cluster, _, _, clock = make_rig()
            cluster.processes[0].alive = False
            supervisor.tick()
            clock[0] += CONFIG.restart_backoff_s / 2
            supervisor.tick()
            assert cluster.respawn_calls == []


class TestWedgeDetection:
    def test_stale_heartbeats_declare_a_wedge(self):
        with use_registry(MetricsRegistry()) as registry:
            clients = [HealthyClient(0), WedgedClient(1)]
            supervisor, _, _, handles, clock = make_rig(clients)
            # Probes fail each interval; staleness accrues from t=0.
            for t in (0.0, 1.1, 2.2):
                clock[0] = t
                supervisor.tick()
                assert handles[1].excluded is False
            clock[0] = CONFIG.heartbeat_stale_s + 0.1
            supervisor.tick()
            assert handles[1].excluded is True
            assert registry.counter(
                "cluster.worker_deaths",
                labels={"worker": "w1", "reason": "wedged"},
            ).value == 1
            # The healthy neighbour was never touched.
            assert handles[0].excluded is False

    def test_successful_probe_resets_staleness(self):
        with use_registry(MetricsRegistry()):
            supervisor, _, _, handles, clock = make_rig()
            for t in (0.0, 2.0, 4.0, 6.0, 8.0):
                clock[0] = t
                supervisor.tick()
            assert handles[0].excluded is False
            assert handles[1].excluded is False


class TestRestartBudgetExhaustion:
    def test_crash_loop_abandons_slot_and_shrinks_ring(self):
        with use_registry(MetricsRegistry()) as registry:
            supervisor, cluster, gateway, handles, clock = make_rig()
            # Death -> replace -> death again: budget=2 allows two
            # replacements, the third death abandons the slot.
            for _ in range(CONFIG.restart_budget):
                cluster.processes[0].alive = False
                supervisor.tick()
                clock[0] += CONFIG.restart_backoff_max_s + 0.01
                supervisor.tick()
            assert supervisor.restarts == CONFIG.restart_budget
            cluster.processes[0].alive = False
            supervisor.tick()
            assert supervisor.status()["abandoned"] == [0]
            assert registry.counter("cluster.worker_abandoned").value == 1
            # The ring shrank; every user now routes to the survivor.
            with gateway._members_lock:
                assert [h.name for h in gateway.handles] == ["w1"]
            for user_id in range(10):
                assert gateway.recommend(
                    {"user_id": user_id}
                )["routed_worker"] == 1
            # Abandoned slots are never revisited.
            respawns = len(cluster.respawn_calls)
            supervisor.tick()
            assert len(cluster.respawn_calls) == respawns

    def test_failed_respawn_charges_the_budget(self):
        with use_registry(MetricsRegistry()):
            config = ClusterConfig(
                num_workers=2, restart_budget=1,
                restart_backoff_s=1.0, restart_backoff_max_s=4.0,
            )
            supervisor, cluster, gateway, _, clock = make_rig(config=config)
            cluster.respawn_error = ClusterStartupError("never came up")
            cluster.processes[0].alive = False
            supervisor.tick()
            clock[0] += config.restart_backoff_s + 0.01
            supervisor.tick()
            assert cluster.respawn_calls == [0]
            # That was the whole budget: the slot is abandoned.
            assert supervisor.status()["abandoned"] == [0]
            assert supervisor.restarts == 0

    def test_last_worker_is_never_removed(self):
        with use_registry(MetricsRegistry()):
            config = ClusterConfig(num_workers=1, restart_budget=0)
            client = HealthyClient(0)
            handle = WorkerHandle(0, client, config)
            gateway = Gateway([handle], config)
            cluster = FakeCluster(gateway, config)
            cluster.processes = {0: FakeProcess(alive=False)}
            clock = [0.0]
            supervisor = ClusterSupervisor(
                cluster, time_source=lambda: clock[0]
            )
            supervisor.tick()
            assert supervisor.status()["abandoned"] == [0]
            with gateway._members_lock:
                assert [h.name for h in gateway.handles] == ["w0"]


class TestStatus:
    def test_status_reports_budget_use(self):
        with use_registry(MetricsRegistry()):
            supervisor, cluster, _, _, clock = make_rig()
            cluster.processes[0].alive = False
            supervisor.tick()
            status = supervisor.status()
            assert status["budget_used"] == {"w0": 1}
            assert status["restarts"] == 0
            assert status["pending"] == [0]
