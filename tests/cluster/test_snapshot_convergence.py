"""Cluster x online loop: replicas converge on the published snapshot.

A cluster configured with ``snapshot_dir`` treats the online loop's
:class:`~repro.online.SnapshotStore` as the source of model truth:
workers boot onto the latest published version, ``/admin/reload`` moves
them forward to it (and *only* forward — no version bump when the store
hasn't moved), and a respawned replacement comes up on it too.  Tests
run in file order: later tests publish newer versions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ServingCluster
from repro.core import ODNETConfig, build_odnet
from repro.data import ODDataset, generate_fliggy_dataset
from repro.data.synthetic import FliggyConfig
from repro.data.world import WorldConfig
from repro.online import SnapshotStore

_NUM_USERS = 120
_NUM_CITIES = 20
_SEED = 0

_USER_PARAMS = (
    "origin_hsgc.user_embedding.weight",
    "dest_hsgc.user_embedding.weight",
)


@pytest.fixture(scope="module")
def replica_model():
    """The same deterministic replica every worker builds (same seed)."""
    dataset = ODDataset(generate_fliggy_dataset(FliggyConfig(
        num_users=_NUM_USERS,
        world=WorldConfig(num_cities=_NUM_CITIES),
        train_points_per_user=1,
        seed=_SEED,
    )))
    return build_odnet(dataset, ODNETConfig(seed=_SEED))


@pytest.fixture(scope="module")
def store(tmp_path_factory, replica_model):
    store = SnapshotStore(tmp_path_factory.mktemp("snapshots"))
    # v1: the baseline the workers must boot onto.
    store.publish(replica_model.state_dict(), {"bootstrap": True})
    return store


@pytest.fixture(scope="module")
def cluster(store):
    config = ClusterConfig(
        num_workers=2,
        num_users=_NUM_USERS,
        num_cities=_NUM_CITIES,
        seed=_SEED,
        startup_timeout_s=180.0,
        drain_timeout_s=30.0,
        supervise=False,
        snapshot_dir=str(store.directory),
    )
    with ServingCluster(config) as running:
        yield running


def _publish_perturbed(store, replica_model, scale: float):
    state = replica_model.state_dict()
    rng = np.random.default_rng(int(scale * 100))
    touched = list(range(0, _NUM_USERS, 3))
    for name in _USER_PARAMS:
        state[name][touched] += rng.normal(0.0, scale, (len(touched),
                                                        state[name].shape[1]))
    return store.publish(state, {"mode": "user", "touched_users": touched})


class TestBoot:
    def test_workers_boot_on_published_snapshot(self, cluster, store):
        assert store.current_version() == 1
        health = cluster.gateway.cluster_health()
        assert health["ready"] == 2
        for name in ("w0", "w1"):
            assert health["per_worker"][name]["model_version"] == 1

    def test_traffic_flows_on_the_snapshot(self, cluster):
        answer = cluster.client().recommend(
            {"user_id": 5, "day": 720, "k": 3}
        )
        assert answer["model_version"] == 1
        assert len(answer["flights"]) == 3


class TestReloadConvergence:
    def test_rolling_restart_converges_on_new_version(self, cluster, store,
                                                      replica_model):
        info = _publish_perturbed(store, replica_model, scale=0.25)
        assert info.version == 2
        reports = cluster.rolling_restart(worker_ids=[0])
        assert reports[0]["drained"] is True
        # The reloaded worker's version IS the store version, no bump.
        assert reports[0]["model_version"] == 2
        # Worker 1 hasn't reloaded: it still serves the old version.
        assert cluster.handles[1].client.health()["model_version"] == 1
        reloaded = cluster.handles[1].client.reload(timeout_s=30.0)
        assert reloaded["model_version"] == 2
        health = cluster.gateway.cluster_health()
        versions = {
            entry["model_version"]
            for entry in health["per_worker"].values()
        }
        assert versions == {store.current_version()} == {2}

    def test_reload_without_new_snapshot_keeps_version(self, cluster):
        # Snapshot clusters converge on the store's version; a reload
        # with an unmoved store must NOT invent a new version (replicas
        # would diverge on a per-worker counter).
        reloaded = cluster.handles[0].client.reload(timeout_s=30.0)
        assert reloaded["model_version"] == 2

    def test_respawned_worker_boots_on_latest(self, cluster, store,
                                              replica_model):
        info = _publish_perturbed(store, replica_model, scale=0.5)
        assert info.version == 3
        client = cluster.respawn_worker(0)
        assert client.health()["model_version"] == 3
