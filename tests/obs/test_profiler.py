"""Profiler hooks: trainer integration, metrics forwarding, composition."""

import numpy as np

from repro.core import build_odnet
from repro.obs import (
    CompositeProfiler,
    MetricsProfiler,
    MetricsRegistry,
    RecordingProfiler,
    use_registry,
)
from repro.train import TrainConfig, Trainer

from tests.conftest import TINY_MODEL_CONFIG


class TestRecordingProfiler:
    def test_trainer_invokes_batch_and_epoch_hooks(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        profiler = RecordingProfiler()
        history = Trainer(
            TrainConfig(epochs=2, seed=0), profiler=profiler
        ).fit(model, od_dataset)

        epochs = [e for e in profiler.events if e["hook"] == "epoch"]
        batches = [e for e in profiler.events if e["hook"] == "batch"]
        assert len(epochs) == 2
        assert len(batches) >= 2
        first = epochs[0]
        assert np.isfinite(first["loss"])
        assert first["grad_norm"] > 0
        assert 0.0 < first["theta"] < 1.0          # ODNET exposes Eq. 8 theta
        assert first["examples_per_sec"] > 0
        assert batches[0]["batch_size"] > 0
        # History mirrors the hook stream.
        assert len(history.grad_norms) == 2
        assert len(history.thetas) == 2
        assert len(history.examples_per_sec) == 2

    def test_grad_norm_skipped_when_unobserved(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        history = Trainer(TrainConfig(epochs=1, seed=0)).fit(model, od_dataset)
        assert history.epoch_losses and np.isfinite(history.final_loss)
        assert history.grad_norms == []            # not computed when disabled


class TestTrainerMetrics:
    def test_trainer_writes_registry(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        with use_registry() as registry:
            Trainer(TrainConfig(epochs=1, seed=0)).fit(model, od_dataset)
        assert registry.counter("train.epochs").value == 1
        assert registry.counter("train.examples").value > 0
        assert registry.histogram("train.grad_norm").count >= 1
        assert np.isfinite(registry.gauge("train.epoch_loss").value)
        assert 0.0 < registry.gauge("train.theta").value < 1.0


class TestMetricsProfiler:
    def test_forwards_to_registry(self):
        registry = MetricsRegistry()
        profiler = MetricsProfiler(registry)
        profiler.on_epoch(0, loss=0.4, grad_norm=1.2, theta=0.5,
                          examples_per_sec=100.0)
        profiler.on_batch(0, 0, loss=0.4, grad_norm=1.2)
        profiler.on_request(7, 720, latency_ms=3.0, num_candidates=50, k=5)
        assert registry.gauge("train.loss").value == 0.4
        assert registry.gauge("train.theta").value == 0.5
        assert registry.histogram("train.grad_norm").count == 1
        assert registry.histogram("serving.latency_ms").count == 1
        assert registry.counter("profiler.requests").value == 1

    def test_uses_active_registry_by_default(self):
        profiler = MetricsProfiler()
        with use_registry() as registry:
            profiler.on_request(1, 700, latency_ms=2.0)
        assert registry.counter("profiler.requests").value == 1


class TestCompositeProfiler:
    def test_fans_out(self):
        first, second = RecordingProfiler(), RecordingProfiler()
        composite = CompositeProfiler(first, second)
        composite.on_epoch(0, loss=0.1)
        composite.on_request(1, 2, latency_ms=1.0)
        assert len(first.events) == len(second.events) == 2
