"""Span tracing: nesting/parentage, tags, aggregation, null path."""

from repro.obs.tracing import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    use_tracer,
)


class TestSpans:
    def test_nested_parentage(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild") as grandchild:
                    pass
            with tracer.span("sibling") as sibling:
                pass
        assert root.parent_id is None and root.is_root
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == root.span_id
        # Finish order is innermost-first.
        assert [s.name for s in tracer.finished()] == [
            "grandchild", "child", "sibling", "root",
        ]

    def test_span_ids_unique(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [s.span_id for s in tracer.finished()]
        assert len(ids) == len(set(ids))

    def test_durations_nested_leq_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                sum(range(1000))
        inner, outer = tracer.finished()
        assert 0 <= inner.duration_ms <= outer.duration_ms

    def test_tags_from_kwargs_and_set_tag(self):
        tracer = Tracer()
        with tracer.span("op", user_id=7) as span:
            span.set_tag("candidates", 42)
        finished = tracer.finished("op")[0]
        assert finished.tags == {"user_id": 7, "candidates": 42}

    def test_span_survives_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert tracer.finished("boom")[0].end_s is not None
        # The stack unwound, so a new span is a root again.
        with tracer.span("after") as span:
            assert span.parent_id is None

    def test_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("op"):
                pass
        stats = tracer.aggregate()["op"]
        assert stats["count"] == 3
        assert stats["total_ms"] >= stats["max_ms"] >= stats["mean_ms"] >= 0

    def test_reset(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.reset()
        assert tracer.finished() == []


class TestActiveTracer:
    def test_default_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_null_tracer_records_nothing(self):
        tracer = NullTracer()
        with tracer.span("x", a=1) as span:
            span.set_tag("b", 2)
        assert tracer.finished() == []

    def test_use_tracer_scopes_and_restores(self):
        before = get_tracer()
        with use_tracer() as tracer:
            assert get_tracer() is tracer
            with get_tracer().span("seen"):
                pass
        assert get_tracer() is before
        assert [s.name for s in tracer.finished()] == ["seen"]
