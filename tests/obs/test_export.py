"""Exporter round-trips: JSONL parse-back and Prometheus text format."""

import math

from repro.obs import (
    MetricsRegistry,
    Tracer,
    read_jsonl,
    render_records,
    render_summary,
    snapshot_records,
    to_prometheus,
    write_jsonl,
)


def _populated():
    registry = MetricsRegistry()
    registry.counter("serving.requests").inc(3)
    registry.gauge("train.theta").set(0.52)
    histogram = registry.histogram("serving.latency_ms", buckets=(1.0, 10.0))
    for value in (0.5, 2.0, 50.0):
        histogram.observe(value)
    tracer = Tracer()
    with tracer.span("recommend", user_id=1):
        with tracer.span("recall"):
            pass
    return registry, tracer


class TestJsonl:
    def test_round_trip(self, tmp_path):
        registry, tracer = _populated()
        path = tmp_path / "snapshot.jsonl"
        written = write_jsonl(path, registry, tracer)
        records = read_jsonl(path)
        assert len(records) == written == 5  # counter, gauge, hist, 2 spans
        assert records == snapshot_records(registry, tracer)

        by_type = {}
        for record in records:
            by_type.setdefault(record["type"], []).append(record)
        assert by_type["counter"][0]["value"] == 3.0
        assert by_type["gauge"][0]["value"] == 0.52
        histogram = by_type["histogram"][0]
        assert histogram["count"] == 3
        assert histogram["max"] == 50.0
        assert histogram["buckets"][-1]["le"] == "+Inf"
        assert histogram["buckets"][-1]["count"] == 3
        span_names = {record["name"] for record in by_type["span"]}
        assert span_names == {"recommend", "recall"}
        parents = {r["name"]: r["parent_id"] for r in by_type["span"]}
        assert parents["recommend"] is None
        assert parents["recall"] is not None

    def test_nan_gauge_round_trips_as_null(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("never.set")
        path = tmp_path / "snapshot.jsonl"
        write_jsonl(path, registry)
        (record,) = read_jsonl(path)
        assert record["value"] is None

    def test_rendered_from_file_matches_live(self, tmp_path):
        registry, tracer = _populated()
        path = tmp_path / "snapshot.jsonl"
        write_jsonl(path, registry, tracer)
        assert render_records(read_jsonl(path)) == render_summary(
            registry, tracer
        )


class TestPrometheus:
    def test_text_format_lines(self):
        registry, _ = _populated()
        text = to_prometheus(registry)
        lines = text.splitlines()
        assert "# TYPE repro_serving_requests_total counter" in lines
        assert "repro_serving_requests_total 3.0" in lines
        assert "# TYPE repro_train_theta gauge" in lines
        assert "repro_train_theta 0.52" in lines
        assert "# TYPE repro_serving_latency_ms histogram" in lines
        assert 'repro_serving_latency_ms_bucket{le="1.0"} 1' in lines
        assert 'repro_serving_latency_ms_bucket{le="10.0"} 2' in lines
        assert 'repro_serving_latency_ms_bucket{le="+Inf"} 3' in lines
        assert "repro_serving_latency_ms_count 3" in lines
        sum_line = next(
            line for line in lines
            if line.startswith("repro_serving_latency_ms_sum")
        )
        assert math.isclose(float(sum_line.split()[-1]), 52.5)

    def test_empty_registry(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestSummary:
    def test_empty_summary_placeholder(self):
        assert render_records([]) == "(no telemetry recorded)"

    def test_summary_sections(self):
        registry, tracer = _populated()
        text = render_summary(registry, tracer)
        for section in ("counters", "gauges", "histograms", "spans"):
            assert f"== {section} ==" in text
        assert "serving.requests" in text
        assert "recommend" in text
