"""Metrics registry: counters, gauges, histogram percentiles, null path."""

import math

import pytest

from repro.obs.registry import (
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    set_registry,
    use_registry,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(2.5)
        assert registry.counter("c").value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(2.0)
        gauge.set(-1.0)
        assert gauge.value == -1.0

    def test_labels_create_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("c", labels={"stage": "recall"}).inc()
        registry.counter("c", labels={"stage": "rank"}).inc(2)
        values = {
            tuple(sorted(c.labels.items())): c.value for c in registry.counters
        }
        assert values[(("stage", "recall"),)] == 1
        assert values[(("stage", "rank"),)] == 2


class TestDefaultLabels:
    """Registry-level default labels: every instrument a cluster worker
    creates is stamped with its identity without threading a label
    through each call site."""

    def test_counter_gets_default_labels(self):
        registry = MetricsRegistry(default_labels={"worker": "w3"})
        registry.counter("serving.requests").inc()
        (counter,) = registry.counters
        assert counter.labels == {"worker": "w3"}

    def test_call_site_labels_merge_with_defaults(self):
        registry = MetricsRegistry(default_labels={"worker": "w3"})
        registry.counter("c", labels={"stage": "recall"}).inc()
        (counter,) = registry.counters
        assert counter.labels == {"worker": "w3", "stage": "recall"}

    def test_call_site_wins_on_conflict(self):
        registry = MetricsRegistry(default_labels={"worker": "w3"})
        registry.counter("c", labels={"worker": "override"}).inc()
        (counter,) = registry.counters
        assert counter.labels == {"worker": "override"}

    def test_applies_to_gauges_and_histograms(self):
        registry = MetricsRegistry(default_labels={"worker": "w0"})
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        (histogram,) = registry.histograms
        assert histogram.labels == {"worker": "w0"}

    def test_no_defaults_means_unlabelled(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        (counter,) = registry.counters
        assert counter.labels == {}

    def test_same_name_different_registries_stay_separate(self):
        w0 = MetricsRegistry(default_labels={"worker": "w0"})
        w1 = MetricsRegistry(default_labels={"worker": "w1"})
        w0.counter("serving.requests").inc(3)
        w1.counter("serving.requests").inc(5)
        assert w0.counter("serving.requests").value == 3
        assert w1.counter("serving.requests").value == 5


class TestHistogramPercentiles:
    def test_empty_histogram_is_nan(self):
        histogram = Histogram("h")
        assert math.isnan(histogram.percentile(50))
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.min)
        assert math.isnan(histogram.max)
        assert histogram.count == 0

    def test_single_sample_every_percentile(self):
        histogram = Histogram("h")
        histogram.observe(7.0)
        for q in (0, 50, 95, 99, 100):
            assert histogram.percentile(q) == 7.0
        assert histogram.min == histogram.max == 7.0

    def test_all_equal_samples(self):
        histogram = Histogram("h")
        for _ in range(10):
            histogram.observe(3.0)
        assert histogram.percentile(50) == 3.0
        assert histogram.percentile(99) == 3.0
        assert histogram.mean == 3.0

    def test_percentiles_monotone(self):
        histogram = Histogram("h")
        for value in range(100):
            histogram.observe(float(value))
        p50, p95, p99 = (histogram.percentile(q) for q in (50, 95, 99))
        assert p50 <= p95 <= p99 <= histogram.max

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    def test_summary_keys(self):
        histogram = Histogram("h")
        histogram.observe(1.0)
        summary = histogram.summary()
        assert set(summary) == {
            "count", "sum", "mean", "min", "max", "p50", "p90", "p95", "p99",
        }
        assert summary["count"] == 1.0

    def test_bucket_counts_cumulative_and_boundary_inclusive(self):
        histogram = Histogram("h", buckets=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            histogram.observe(value)
        pairs = histogram.cumulative_buckets()
        assert pairs[0] == (1.0, 2)       # 0.5 and the boundary value 1.0
        assert pairs[1] == (5.0, 3)
        assert pairs[2][1] == 4           # +Inf sees every sample
        assert math.isinf(pairs[2][0])


class TestActiveRegistry:
    def test_default_is_null(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_null_registry_is_inert(self):
        registry = NullRegistry()
        registry.counter("c").inc(5)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(2.0)
        assert registry.counters == []
        assert registry.histograms == []

    def test_use_registry_scopes_and_restores(self):
        before = get_registry()
        with use_registry() as registry:
            assert get_registry() is registry
            assert registry.enabled
        assert get_registry() is before

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert get_registry() is registry
        finally:
            set_registry(previous)
        assert get_registry() is previous
