"""STL variants (Section V-A.4)."""

import numpy as np
import pytest

from repro.core import build_stl
from repro.core.variants import VARIANTS, SingleTaskNetwork
from tests.conftest import TINY_MODEL_CONFIG


class TestSingleTaskNetwork:
    def test_side_validated(self, od_dataset):
        with pytest.raises(ValueError):
            SingleTaskNetwork(od_dataset, "x", TINY_MODEL_CONFIG)

    def test_probability_shape(self, od_dataset):
        net = SingleTaskNetwork(od_dataset, "o", TINY_MODEL_CONFIG)
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        p = net.probability(batch)
        assert p.shape == (8,)
        assert np.all((p.data > 0) & (p.data < 1))

    def test_loss_uses_side_label(self, od_dataset):
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        net_o = SingleTaskNetwork(od_dataset, "o", TINY_MODEL_CONFIG)
        loss = net_o.loss(batch)
        assert np.isfinite(loss.item())


class TestSTLRanker:
    def test_variant_factory(self, od_dataset):
        plus = build_stl(od_dataset, TINY_MODEL_CONFIG, "STL+G")
        minus = build_stl(od_dataset, TINY_MODEL_CONFIG, "STL-G")
        assert plus.name == "STL+G"
        assert plus.dest_net.hsgc.depth == TINY_MODEL_CONFIG.depth
        assert minus.dest_net.hsgc.depth == 0

    def test_unknown_variant(self, od_dataset):
        with pytest.raises(ValueError):
            build_stl(od_dataset, TINY_MODEL_CONFIG, "STL?")

    def test_pair_score_is_equal_blend(self, od_dataset):
        model = build_stl(od_dataset, TINY_MODEL_CONFIG, "STL-G")
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        p_o, p_d = model.predict(batch)
        np.testing.assert_allclose(
            model.score_pairs(batch), 0.5 * p_o + 0.5 * p_d
        )

    def test_lbsn_mode_trains_destination_only(self, lbsn_od_dataset):
        model = build_stl(lbsn_od_dataset, TINY_MODEL_CONFIG, "STL+G")
        assert model.origin_net is None
        batch = next(lbsn_od_dataset.iter_batches("train", 8, shuffle=False))
        p_o, p_d = model.predict(batch)
        np.testing.assert_allclose(p_o, p_d)
        np.testing.assert_allclose(model.score_pairs(batch), p_d)

    def test_training_reduces_loss(self, od_dataset):
        from repro.train import TrainConfig, Trainer

        model = build_stl(od_dataset, TINY_MODEL_CONFIG, "STL-G")
        history = Trainer(TrainConfig(epochs=2, seed=0)).fit(model, od_dataset)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_variant_doc_table(self):
        names = {v.name for v in VARIANTS}
        assert names == {"ODNET", "ODNET-G", "STL+G", "STL-G"}
        by_name = {v.name: v for v in VARIANTS}
        assert by_name["ODNET"].graph and by_name["ODNET"].joint
        assert not by_name["STL-G"].graph and not by_name["STL-G"].joint
