"""The full ODNET model: forward, loss (Eq. 8), serving score (Eq. 11)."""

import numpy as np
import pytest

from repro.core import ODNET, ODNETConfig, build_odnet
from repro.tensor import Tensor
from tests.conftest import TINY_MODEL_CONFIG


@pytest.fixture(scope="module")
def untrained(od_dataset):
    return build_odnet(od_dataset, TINY_MODEL_CONFIG)


@pytest.fixture()
def batch(od_dataset):
    return next(od_dataset.iter_batches("train", batch_size=16,
                                        shuffle=False))


class TestForward:
    def test_probabilities(self, untrained, batch):
        p_o, p_d = untrained(batch)
        assert p_o.shape == (16,)
        assert np.all((p_o.data > 0) & (p_o.data < 1))
        assert np.all((p_d.data > 0) & (p_d.data < 1))

    def test_predict_is_deterministic(self, untrained, batch):
        a = untrained.predict(batch)
        b = untrained.predict(batch)
        np.testing.assert_allclose(a[0], b[0])

    def test_predict_restores_training_mode(self, untrained, batch):
        untrained.train()
        untrained.predict(batch)
        assert untrained.training

    def test_loss_is_finite_scalar(self, untrained, batch):
        loss = untrained.loss(batch)
        assert loss.data.size == 1
        assert np.isfinite(loss.item())

    def test_loss_gradients_reach_everything(self, untrained, batch):
        untrained.zero_grad()
        untrained.loss(batch).backward()
        missing = [
            name for name, p in untrained.named_parameters() if p.grad is None
        ]
        assert not missing, missing


class TestTheta:
    def test_theta_starts_at_half(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        assert model.theta == pytest.approx(0.5)

    def test_theta_stays_in_unit_interval_after_training(self, trained_odnet):
        assert 0.0 < trained_odnet.theta < 1.0

    def test_score_pairs_is_eq11(self, trained_odnet, batch):
        p_o, p_d = trained_odnet.predict(batch)
        theta = trained_odnet.theta
        np.testing.assert_allclose(
            trained_odnet.score_pairs(batch), theta * p_o + (1 - theta) * p_d
        )

    def test_theta_prior_pulls_to_center(self, od_dataset, batch):
        from dataclasses import replace

        strong = build_odnet(
            od_dataset, replace(TINY_MODEL_CONFIG, theta_prior=100.0)
        )
        strong.theta_logit.data = np.asarray(2.0)
        loss = strong.loss(batch)
        loss.backward()
        # The prior gradient must push theta back towards 0.5 (positive
        # gradient on the logit when theta > 0.5 and the prior dominates).
        assert strong.theta_logit.grad > 0


class TestVariant:
    def test_odnet_g_has_no_graph_layers(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG, "ODNET-G")
        assert model.name == "ODNET-G"
        assert model.origin_hsgc.depth == 0
        assert not model.origin_hsgc.step_layers

    def test_unknown_variant_rejected(self, od_dataset):
        with pytest.raises(ValueError):
            build_odnet(od_dataset, TINY_MODEL_CONFIG, "ODNET-X")

    def test_full_model_has_graph_layers(self, untrained):
        assert untrained.origin_hsgc.depth == TINY_MODEL_CONFIG.depth
        assert len(untrained.dest_hsgc.step_layers) == TINY_MODEL_CONFIG.depth


class TestTraining:
    def test_training_reduces_loss(self, od_dataset):
        from repro.train import TrainConfig, Trainer

        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        history = Trainer(TrainConfig(epochs=3, seed=0)).fit(model, od_dataset)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_trained_model_beats_chance_auc(self, trained_odnet, od_dataset):
        from repro.train import evaluate_auc

        metrics = evaluate_auc(trained_odnet, od_dataset)
        assert metrics["AUC-O"] > 0.7
        assert metrics["AUC-D"] > 0.6

    def test_gate_mixtures_shape(self, trained_odnet, batch):
        mixtures = trained_odnet.gate_mixtures(batch)
        assert mixtures.shape == (2, 16, TINY_MODEL_CONFIG.num_experts)
        np.testing.assert_allclose(mixtures.sum(axis=-1), 1.0)

    def test_pair_features_affect_scores(self, trained_odnet, od_dataset):
        """Zeroing the pair features changes the joint model's output —
        evidence the unity-of-O&D pathway is live."""
        batch = next(od_dataset.iter_batches("train", 16, shuffle=False))
        base = trained_odnet.score_pairs(batch)
        batch.pair_features = np.zeros_like(batch.pair_features)
        ablated = trained_odnet.score_pairs(batch)
        assert not np.allclose(base, ablated)
