"""HSGC — Algorithm 1 with Eq. 1 attention and Eq. 2 spatial weights."""

import numpy as np
import pytest

from repro.core.hsgc import HSGComponent
from repro.graph import EdgeType, HeterogeneousSpatialGraph, Metapath, build_neighbor_table


@pytest.fixture()
def small_hsg():
    rng = np.random.default_rng(0)
    coords = np.column_stack([rng.uniform(0, 10, 8), rng.uniform(0, 10, 8)])
    g = HeterogeneousSpatialGraph(4, coords)
    for user in range(4):
        for city in rng.choice(8, size=3, replace=False):
            g.add_edge(user, int(city), EdgeType.DEPARTURE)
    return g


def _component(graph, depth, rng_seed=0):
    table = build_neighbor_table(graph, Metapath.origin_aware(), 5)
    return HSGComponent(
        num_users=graph.num_users,
        num_cities=graph.num_cities,
        dim=8,
        neighbor_table=table,
        spatial_weights=graph.spatial_weights,
        depth=depth,
        rng=np.random.default_rng(rng_seed),
    )


class TestConstruction:
    def test_negative_depth_rejected(self, small_hsg):
        with pytest.raises(ValueError):
            _component(small_hsg, depth=-1)

    def test_depth_positive_requires_table(self):
        with pytest.raises(ValueError):
            HSGComponent(2, 3, 4, None, None, depth=1,
                         rng=np.random.default_rng(0))

    def test_depth_zero_without_table_allowed(self):
        comp = HSGComponent(2, 3, 4, None, None, depth=0,
                            rng=np.random.default_rng(0))
        users, cities = comp.node_embeddings()
        assert users.shape == (2, 4)
        assert cities.shape == (3, 4)


class TestPropagation:
    def test_output_shapes(self, small_hsg):
        comp = _component(small_hsg, depth=2)
        users, cities = comp.node_embeddings()
        assert users.shape == (4, 8)
        assert cities.shape == (8, 8)

    def test_depth_zero_returns_base_tables(self, small_hsg):
        comp = _component(small_hsg, depth=0)
        users, cities = comp.node_embeddings()
        np.testing.assert_allclose(users.data, comp.user_embedding.weight.data)
        np.testing.assert_allclose(cities.data, comp.city_embedding.weight.data)

    def test_one_step_layer_per_depth(self, small_hsg):
        assert len(_component(small_hsg, depth=3).step_layers) == 3

    def test_propagation_changes_embeddings(self, small_hsg):
        comp = _component(small_hsg, depth=2)
        users, _ = comp.node_embeddings()
        assert not np.allclose(users.data, comp.user_embedding.weight.data)

    def test_outputs_nonnegative_after_relu(self, small_hsg):
        comp = _component(small_hsg, depth=1)
        users, cities = comp.node_embeddings()
        assert (users.data >= 0).all()
        assert (cities.data >= 0).all()

    def test_gradients_reach_base_embeddings_and_weights(self, small_hsg):
        comp = _component(small_hsg, depth=2)
        users, cities = comp.node_embeddings()
        (users.sum() + cities.sum()).backward()
        assert comp.user_embedding.weight.grad is not None
        assert comp.city_embedding.weight.grad is not None
        for layer in comp.step_layers:
            assert layer.weight.grad is not None

    def test_neighbor_influence(self, small_hsg):
        """Perturbing a neighbour city's base embedding changes the user's
        propagated embedding (message passing works)."""
        comp = _component(small_hsg, depth=1)
        table = comp.neighbor_table
        user = 0
        neighbor = int(table.user_neighbors[user, 0])
        before = comp.node_embeddings()[0].data[user].copy()
        comp.city_embedding.weight.data[neighbor] += 1.0
        after = comp.node_embeddings()[0].data[user]
        assert not np.allclose(before, after)

    def test_isolated_user_unaffected_by_neighbors(self):
        """A user with no edges aggregates a zero neighbourhood."""
        coords = np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]])
        g = HeterogeneousSpatialGraph(2, coords)
        g.add_edge(0, 0, EdgeType.DEPARTURE)  # user 1 isolated
        comp = _component(g, depth=1)
        table = comp.neighbor_table
        assert table.user_mask[1].sum() == 0
        users, _ = comp.node_embeddings()
        assert np.isfinite(users.data).all()

    def test_spatial_weights_gathered_per_neighbor(self, small_hsg):
        comp = _component(small_hsg, depth=1)
        table = comp.neighbor_table
        w = small_hsg.spatial_weights
        for city in range(small_hsg.num_cities):
            for j in range(table.max_neighbors):
                expected = w[city, table.city_neighbors[city, j]]
                assert comp._city_spatial[city, j] == pytest.approx(expected)
