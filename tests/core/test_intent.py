"""IntentAwareODNET — the future-work travel-intent extension."""

import numpy as np
import pytest

from repro.core import IntentAwareODNET
from tests.conftest import TINY_MODEL_CONFIG


@pytest.fixture(scope="module")
def intent_model(od_dataset):
    return IntentAwareODNET(od_dataset, TINY_MODEL_CONFIG, num_intents=3)


class TestConstruction:
    def test_minimum_intents(self, od_dataset):
        with pytest.raises(ValueError):
            IntentAwareODNET(od_dataset, TINY_MODEL_CONFIG, num_intents=1)

    def test_joint_input_extended(self, intent_model, od_dataset):
        from repro.core.pec import PreferenceExtraction
        from repro.data.dataset import PAIR_DIM

        query_dim = PreferenceExtraction.query_dim(
            TINY_MODEL_CONFIG.dim, od_dataset.xst_dim
        )
        expert = intent_model.joint.experts[0]
        assert expert.layers[0].in_features == 2 * query_dim + PAIR_DIM + 3


class TestForwardAndLoss:
    def test_forward_probabilities(self, intent_model, od_dataset):
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        p_o, p_d = intent_model(batch)
        assert np.all((p_o.data > 0) & (p_o.data < 1))
        assert np.all((p_d.data > 0) & (p_d.data < 1))

    def test_intent_distribution_is_simplex(self, intent_model, od_dataset):
        batch = next(od_dataset.iter_batches("train", 16, shuffle=False))
        intents = intent_model.intent_distribution(batch)
        assert intents.shape == (16, 3)
        np.testing.assert_allclose(intents.sum(axis=-1), 1.0)
        assert np.all(intents >= 0)

    def test_dominant_intent_ids(self, intent_model, od_dataset):
        batch = next(od_dataset.iter_batches("train", 16, shuffle=False))
        ids = intent_model.dominant_intent(batch)
        assert ids.shape == (16,)
        assert set(ids) <= {0, 1, 2}

    def test_loss_includes_regularisers_and_backprops(self, od_dataset):
        model = IntentAwareODNET(od_dataset, TINY_MODEL_CONFIG,
                                 num_intents=3)
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        model.zero_grad()
        loss = model.loss(batch)
        assert np.isfinite(loss.item())
        loss.backward()
        for name, param in model.intent_head.named_parameters():
            assert param.grad is not None, name

    def test_trains_end_to_end(self, od_dataset):
        from repro.train import TrainConfig, Trainer

        model = IntentAwareODNET(od_dataset, TINY_MODEL_CONFIG,
                                 num_intents=3)
        history = Trainer(TrainConfig(epochs=2, seed=0)).fit(model, od_dataset)
        assert history.epoch_losses[-1] < history.epoch_losses[0]

    def test_no_intent_collapse_after_training(self, od_dataset):
        """The diversity regulariser keeps more than one intent alive."""
        from repro.train import TrainConfig, Trainer

        model = IntentAwareODNET(od_dataset, TINY_MODEL_CONFIG,
                                 num_intents=3, diversity_weight=0.1)
        Trainer(TrainConfig(epochs=2, seed=0)).fit(model, od_dataset)
        batch = next(od_dataset.iter_batches("test", 128, shuffle=False))
        marginal = model.intent_distribution(batch).mean(axis=0)
        assert marginal.max() < 0.99
