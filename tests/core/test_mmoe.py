"""O&D-JLC — the MMoE head of Eqs. 6-7."""

import numpy as np
import pytest

from repro.core.mmoe import MMoEJointLearning
from repro.tensor import Tensor


@pytest.fixture()
def mmoe(rng):
    return MMoEJointLearning(
        input_dim=12, expert_dim=6, tower_hidden=4, rng=rng,
        num_experts=3, num_tasks=2,
    )


class TestStructure:
    def test_counts_validated(self, rng):
        with pytest.raises(ValueError):
            MMoEJointLearning(4, 2, 2, rng, num_experts=0)

    def test_three_experts_two_gates_two_towers(self, mmoe):
        assert len(mmoe.experts) == 3
        assert len(mmoe.gates) == 2
        assert len(mmoe.towers) == 2

    def test_gates_have_no_bias(self, mmoe):
        assert all(gate.bias is None for gate in mmoe.gates)


class TestForward:
    def test_probability_outputs(self, mmoe, rng):
        q = Tensor(rng.normal(size=(5, 12)))
        p_o, p_d = mmoe(q)
        assert p_o.shape == (5,)
        assert p_d.shape == (5,)
        assert np.all((p_o.data > 0) & (p_o.data < 1))
        assert np.all((p_d.data > 0) & (p_d.data < 1))

    def test_gate_mixtures_are_simplex(self, mmoe, rng):
        q = Tensor(rng.normal(size=(7, 12)))
        mixtures = mmoe.gate_mixtures(q)
        assert mixtures.shape == (2, 7, 3)
        np.testing.assert_allclose(mixtures.sum(axis=-1), 1.0)
        assert np.all(mixtures >= 0)

    def test_tasks_can_differ(self, mmoe, rng):
        q = Tensor(rng.normal(size=(16, 12)))
        p_o, p_d = mmoe(q)
        assert not np.allclose(p_o.data, p_d.data)

    def test_gradients_reach_every_expert_and_gate(self, mmoe, rng):
        q = Tensor(rng.normal(size=(4, 12)))
        p_o, p_d = mmoe(q)
        (p_o.sum() + p_d.sum()).backward()
        for name, param in mmoe.named_parameters():
            assert param.grad is not None, name

    def test_tasks_learn_different_mixtures(self, rng):
        """Training two conflicting tasks drives the gates apart."""
        from repro.optim import Adam
        from repro.tensor import functional as F

        mmoe = MMoEJointLearning(4, 8, 8, rng, num_experts=3, num_tasks=2)
        X = rng.normal(size=(256, 4))
        y_a = (X[:, 0] > 0).astype(float)
        y_b = (X[:, 1] > 0).astype(float)
        opt = Adam(mmoe.parameters(), lr=0.02)
        for _ in range(150):
            opt.zero_grad()
            p_a, p_b = mmoe(Tensor(X))
            loss = (
                F.binary_cross_entropy(p_a, y_a)
                + F.binary_cross_entropy(p_b, y_b)
            )
            loss.backward()
            opt.step()
        mixtures = mmoe.gate_mixtures(Tensor(X))
        assert loss.item() < 0.8
        gap = np.abs(mixtures[0].mean(axis=0) - mixtures[1].mean(axis=0)).max()
        assert gap > 0.01
