"""PEC — Eqs. 3-5 and the tower query assembly."""

import numpy as np
import pytest

from repro.core.pec import PreferenceExtraction
from repro.tensor import Tensor


@pytest.fixture()
def pec(rng):
    return PreferenceExtraction(dim=8, num_heads=2, rng=rng)


def _sequences(rng, batch=3, long_len=6, short_len=4, dim=8):
    long_seq = Tensor(rng.normal(size=(batch, long_len, dim)))
    short_seq = Tensor(rng.normal(size=(batch, short_len, dim)))
    long_mask = np.ones((batch, long_len), dtype=bool)
    short_mask = np.ones((batch, short_len), dtype=bool)
    long_mask[1, 4:] = False
    short_mask[2, 2:] = False
    return long_seq, long_mask, short_seq, short_mask


class TestForward:
    def test_output_shapes(self, pec, rng):
        v_l, v_s = pec(*_sequences(rng))
        assert v_l.shape == (3, 8)
        assert v_s.shape == (3, 8)

    def test_gradients_flow(self, pec, rng):
        v_l, v_s = pec(*_sequences(rng))
        (v_l.sum() + v_s.sum()).backward()
        for name, param in pec.named_parameters():
            assert param.grad is not None, name

    def test_positional_embeddings_matter(self, pec, rng):
        """Swapping two long-term steps changes v_L (order-awareness)."""
        long_seq, long_mask, short_seq, short_mask = _sequences(rng)
        v1, _ = pec(long_seq, long_mask, short_seq, short_mask)
        swapped = long_seq.data.copy()
        swapped[:, [0, 3]] = swapped[:, [3, 0]]
        v2, _ = pec(Tensor(swapped), long_mask, short_seq, short_mask)
        assert not np.allclose(v1.data, v2.data)

    def test_masked_long_positions_ignored(self, pec, rng):
        long_seq, long_mask, short_seq, short_mask = _sequences(rng)
        v1, _ = pec(long_seq, long_mask, short_seq, short_mask)
        poisoned = long_seq.data.copy()
        poisoned[1, 4:] = 1e3  # masked positions of row 1
        v2, _ = pec(Tensor(poisoned), long_mask, short_seq, short_mask)
        np.testing.assert_allclose(v1.data[1], v2.data[1], atol=1e-8)

    def test_short_sequence_drives_attention(self, pec, rng):
        """Changing the short-term clicks changes which long-term bookings
        are attended (Eq. 4's query role).  W* is scaled up so the
        attention is sharp enough for the difference to be visible at
        freshly-initialised weights."""
        pec.history_attention.w_star.data = np.eye(8) * 10.0
        long_seq, long_mask, short_seq, short_mask = _sequences(rng)
        v1, _ = pec(long_seq, long_mask, short_seq, short_mask)
        other_short = Tensor(rng.normal(size=short_seq.shape) * 3)
        v2, _ = pec(long_seq, long_mask, other_short, short_mask)
        assert not np.allclose(v1.data, v2.data)


class TestBuildQuery:
    def test_query_dimension(self, pec, rng):
        batch, dim, xst_dim = 3, 8, 11
        parts = [Tensor(rng.normal(size=(batch, dim))) for _ in range(5)]
        xst = rng.normal(size=(batch, xst_dim))
        q = pec.build_query(parts[0], parts[1], parts[2], parts[3], parts[4], xst)
        assert q.shape == (batch, PreferenceExtraction.query_dim(dim, xst_dim))

    def test_products_present(self, pec, rng):
        batch, dim = 2, 8
        v_l = Tensor(np.ones((batch, dim)) * 2)
        v_s = Tensor(np.ones((batch, dim)) * 3)
        user = Tensor(np.ones((batch, dim)) * 5)
        current = Tensor(np.zeros((batch, dim)))
        cand = Tensor(np.ones((batch, dim)) * 7)
        q = pec.build_query(v_l, v_s, user, current, cand, np.zeros((batch, 1)))
        # layout: v_l, v_s, user, current, cand, v_l*c, v_s*c, user*c, xst
        np.testing.assert_allclose(q.data[:, 5 * dim:6 * dim], 14.0)
        np.testing.assert_allclose(q.data[:, 6 * dim:7 * dim], 21.0)
        np.testing.assert_allclose(q.data[:, 7 * dim:8 * dim], 35.0)
