"""Inference helpers must not flip a model's train/eval state.

Regression for a real bug: ``gate_mixtures`` (and friends) called
``self.eval()`` for a read-only diagnostic and left the model in eval
mode — a mid-training introspection call would silently corrupt the rest
of the run.  Every inference-flavoured entry point now saves and
restores the prior flag via ``Module.eval_mode()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_odnet
from repro.nn import Linear
from repro.serving import CandidateRecall

from ..conftest import TINY_MODEL_CONFIG


@pytest.fixture()
def model(od_dataset):
    return build_odnet(od_dataset, TINY_MODEL_CONFIG)


@pytest.fixture()
def batch(od_dataset):
    recall = CandidateRecall(
        od_dataset.source.world, od_dataset.route_popularity
    )
    point = od_dataset.source.test_points[0]
    return od_dataset.batch_for_candidates(
        point, recall.candidate_pairs(point.history)
    )


class TestEvalModeContextmanager:
    def test_restores_training(self):
        module = Linear(4, 2, np.random.default_rng(0))
        module.train()
        with module.eval_mode():
            assert not module.training
        assert module.training

    def test_restores_eval(self):
        module = Linear(4, 2, np.random.default_rng(0))
        module.eval()
        with module.eval_mode():
            assert not module.training
        assert not module.training

    def test_restores_on_exception(self):
        module = Linear(4, 2, np.random.default_rng(0))
        module.train()
        with pytest.raises(RuntimeError):
            with module.eval_mode():
                raise RuntimeError("mid-inference failure")
        assert module.training

    def test_nested(self):
        module = Linear(4, 2, np.random.default_rng(0))
        module.train()
        with module.eval_mode():
            with module.eval_mode():
                assert not module.training
            assert not module.training
        assert module.training


@pytest.mark.parametrize("start_training", [True, False])
class TestInferenceEntryPoints:
    """Each read-only entry point leaves the flag exactly as it found it."""

    def _set(self, model, start_training):
        model.train() if start_training else model.eval()

    def test_gate_mixtures(self, model, batch, start_training):
        self._set(model, start_training)
        mixtures = model.gate_mixtures(batch)
        assert model.training is start_training
        np.testing.assert_allclose(  # (tasks, B, experts) softmaxes
            mixtures.sum(axis=-1), 1.0, atol=1e-5
        )

    def test_predict(self, model, batch, start_training):
        self._set(model, start_training)
        model.predict(batch)
        assert model.training is start_training

    def test_score_pairs(self, model, batch, start_training):
        self._set(model, start_training)
        model.score_pairs(batch)
        assert model.training is start_training

    def test_intent_distribution(self, od_dataset, batch, start_training):
        from repro.core.intent import IntentAwareODNET

        model = IntentAwareODNET(od_dataset, TINY_MODEL_CONFIG)
        self._set(model, start_training)
        model.intent_distribution(batch)
        assert model.training is start_training


class TestNoOtherBareEvalFlips:
    def test_no_unpaired_eval_calls_in_inference_helpers(self):
        """Audit: nothing outside ``eval_mode()``'s own implementation
        (nn/module.py) calls ``self.eval()`` — the save/restore wrapper
        is the only sanctioned way to flip into eval temporarily."""
        import pathlib
        import re

        root = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro"
        offenders = []
        for path in root.rglob("*.py"):
            if path.name == "module.py" and path.parent.name == "nn":
                continue
            for lineno, line in enumerate(
                path.read_text().splitlines(), 1
            ):
                if re.search(r"\bself\.eval\(\)", line):
                    offenders.append(f"{path.name}:{lineno}")
        assert not offenders, (
            "bare self.eval() flips model state; use self.eval_mode(): "
            f"{offenders}"
        )
