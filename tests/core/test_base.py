"""Ranker base-class contracts."""

import numpy as np

from repro.core.base import NeuralRanker, Ranker


class _ConstantRanker(Ranker):
    name = "const"

    def fit(self, dataset, config=None):
        return 0.0

    def predict(self, batch):
        n = len(batch)
        return np.full(n, 0.8), np.full(n, 0.4)


class TestRankerDefaults:
    def test_default_score_is_equal_blend(self, od_dataset):
        batch = next(od_dataset.iter_batches("train", 4, shuffle=False))
        ranker = _ConstantRanker()
        np.testing.assert_allclose(ranker.score_pairs(batch), 0.6)

    def test_trainable_flag_default(self):
        assert _ConstantRanker.trainable is True


class TestNeuralRankerContract:
    def test_predict_returns_float64_numpy(self, trained_odnet, od_dataset):
        batch = next(od_dataset.iter_batches("train", 4, shuffle=False))
        p_o, p_d = trained_odnet.predict(batch)
        assert isinstance(p_o, np.ndarray)
        assert p_o.dtype == np.float64
        assert isinstance(p_d, np.ndarray)

    def test_fit_returns_positive_seconds(self, od_dataset):
        from repro.core import build_odnet
        from repro.train import TrainConfig
        from tests.conftest import TINY_MODEL_CONFIG

        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        assert model.fit(od_dataset, TrainConfig(epochs=1)) > 0

    def test_is_module_and_ranker(self, trained_odnet):
        from repro.nn import Module

        assert isinstance(trained_odnet, Module)
        assert isinstance(trained_odnet, NeuralRanker)
