"""TokenBucket: lazy refill, bursts, deterministic via injected clock."""

from __future__ import annotations

import pytest

from repro.guard import TokenBucket


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestConstruction:
    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0}, {"rate": -1.0}, {"rate": 5.0, "capacity": 0.0},
        {"rate": 5.0, "capacity": -2.0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)

    def test_capacity_defaults_to_rate(self):
        assert TokenBucket(rate=7.0).capacity == 7.0


class TestAcquire:
    def test_starts_full_and_allows_a_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False
        ]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=2.0, clock=clock)
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()
        clock.advance(0.5)           # 0.5s * 2 tokens/s = 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, capacity=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == 2.0

    def test_rejects_nonpositive_token_request(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0).try_acquire(0.0)

    def test_fractional_tokens(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=1.0, clock=clock)
        assert bucket.try_acquire(0.75)
        assert not bucket.try_acquire(0.5)
        assert bucket.try_acquire(0.25)
