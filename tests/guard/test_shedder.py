"""LoadShedder: priority thresholds, shed ordering, typed rejections."""

from __future__ import annotations

import pytest

from repro.guard import AdmissionRejected, LoadShedder, Priority, ShedPolicy
from repro.obs import use_registry


class TestPolicy:
    @pytest.mark.parametrize("kwargs", [
        {"background_at": 0.0},
        {"background_at": 1.5},
        {"background_at": 0.9, "batch_at": 0.5},       # inverted order
        {"batch_at": 0.9, "interactive_at": 0.5},
    ])
    def test_rejects_bad_thresholds(self, kwargs):
        with pytest.raises(ValueError):
            ShedPolicy(**kwargs)

    def test_default_ordering(self):
        policy = ShedPolicy()
        assert (
            policy.threshold(Priority.BACKGROUND)
            < policy.threshold(Priority.BATCH)
            < policy.threshold(Priority.INTERACTIVE)
        )


class TestShedding:
    def test_idle_system_sheds_nothing(self):
        shedder = LoadShedder()
        for priority in Priority:
            shedder.check(priority, pressure=0.0)

    def test_sheds_lowest_priority_first(self):
        shedder = LoadShedder(ShedPolicy(
            background_at=0.5, batch_at=0.75, interactive_at=1.0
        ))
        # At 60% pressure only background sheds.
        shedder.check(Priority.INTERACTIVE, 0.6)
        shedder.check(Priority.BATCH, 0.6)
        with pytest.raises(AdmissionRejected):
            shedder.check(Priority.BACKGROUND, 0.6)
        # At 80% batch sheds too; interactive still admitted.
        shedder.check(Priority.INTERACTIVE, 0.8)
        with pytest.raises(AdmissionRejected):
            shedder.check(Priority.BATCH, 0.8)
        # Only complete saturation sheds interactive.
        with pytest.raises(AdmissionRejected):
            shedder.check(Priority.INTERACTIVE, 1.0)
        assert shedder.shed_counts == {
            Priority.INTERACTIVE: 1, Priority.BATCH: 1,
            Priority.BACKGROUND: 1,
        }

    def test_rejection_is_typed_and_labelled(self):
        shedder = LoadShedder(site="serving.admission")
        with use_registry() as registry:
            with pytest.raises(AdmissionRejected) as excinfo:
                shedder.check(Priority.BACKGROUND, 1.0)
            assert excinfo.value.reason == "shed:background"
            assert excinfo.value.priority is Priority.BACKGROUND
            assert excinfo.value.site == "serving.admission"
            assert registry.counter("guard.shed").value == 1
