"""The acceptance scenario: a guarded recommender at 4x capacity.

Twelve concurrent clients with mixed priorities hammer a
FlightRecommender whose guard allows two concurrent requests and two
waiters, while the chaos injector slows every rank call.  The overload
contract under test: no caller ever sees a raw exception, interactive
traffic always gets an answer, shed traffic comes back as typed
admission degradations, and a final drain completes every in-flight
request before reporting drained.
"""

from __future__ import annotations

import threading
import time
from threading import Barrier, Thread

import pytest

from repro.guard import (
    AdmissionRejected,
    GuardConfig,
    Priority,
    ShedPolicy,
)
from repro.guard.overload import ADMISSION_SITE
from repro.obs import use_registry
from repro.resilience import FaultInjector, FaultSpec, use_fault_injector
from repro.serving import FlightRecommender
from repro.serving.platform import RecommendationResponse


def guarded_recommender(trained_odnet, od_dataset, **overrides):
    config = dict(
        max_concurrent=2, max_queue=2, queue_timeout_ms=100.0,
    )
    config.update(overrides)
    return FlightRecommender(
        trained_odnet, od_dataset, guard=GuardConfig(**config)
    )


def was_shed(response: RecommendationResponse) -> bool:
    return any(event.site == ADMISSION_SITE for event in response.fallbacks)


class TestOverloadContract:
    def test_four_x_capacity_mixed_priorities(self, trained_odnet,
                                              od_dataset):
        recommender = guarded_recommender(trained_odnet, od_dataset)
        points = od_dataset.source.test_points
        clients = 12                       # 4x the 2-slot + 2-queue guard
        rounds = 3
        barrier = Barrier(clients)
        responses: dict[int, list] = {i: [] for i in range(clients)}
        errors: list[BaseException] = []
        priorities = [Priority(i % len(Priority)) for i in range(clients)]

        def client(index: int) -> None:
            try:
                barrier.wait()
                for turn in range(rounds):
                    point = points[(index + turn * clients) % len(points)]
                    responses[index].append(recommender.recommend(
                        user_id=point.history.user_id,
                        day=point.day,
                        k=5,
                        deadline=2_000.0,
                        priority=priorities[index],
                    ))
            except BaseException as exc:      # the contract forbids this
                errors.append(exc)

        chaos = FaultInjector(seed=0)
        chaos.add("rank.score", FaultSpec(latency_ms=10.0, latency_rate=1.0))
        threads = [Thread(target=client, args=(i,)) for i in range(clients)]
        with use_registry() as registry, use_fault_injector(chaos):
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        # 1. No caller saw a raw exception; every call returned a response.
        assert errors == []
        flat = [r for rs in responses.values() for r in rs]
        assert len(flat) == clients * rounds
        assert all(isinstance(r, RecommendationResponse) for r in flat)
        assert all(len(r) > 0 for r in flat)   # never an empty answer

        # 2. Shed traffic is typed admission degradation, never an error.
        shed = [r for r in flat if was_shed(r)]
        for response in shed:
            assert response.degraded
            admission_events = [
                e for e in response.fallbacks if e.site == ADMISSION_SITE
            ]
            assert admission_events
            reason = admission_events[0].reason
            assert (
                reason.startswith("shed:")
                or reason in ("queue_full", "queue_timeout", "rate_limited")
            )

        # 3. Offered load was genuinely 4x capacity, so something shed...
        assert shed, "12 clients against 2 slots must shed something"
        # ...and the shed skew follows priority: background never outlives
        # interactive (per-class shed fraction is monotone in priority).
        def shed_fraction(priority):
            mine = [
                r
                for index, rs in responses.items()
                if priorities[index] is priority
                for r in rs
            ]
            return sum(was_shed(r) for r in mine) / len(mine)

        assert shed_fraction(Priority.BACKGROUND) >= shed_fraction(
            Priority.INTERACTIVE
        )

        # 4. The guard counters saw the same story the responses tell.
        admitted = registry.counter("guard.admitted").value
        shed_count = registry.counter("guard.shed").value
        assert admitted == len(flat) - len(shed)
        assert shed_count == len(shed)

    def test_drain_completes_in_flight_then_refuses(self, trained_odnet,
                                                    od_dataset):
        recommender = guarded_recommender(trained_odnet, od_dataset)
        points = od_dataset.source.test_points
        in_rank = threading.Event()
        finished = []
        chaos = FaultInjector(
            seed=0,
            sleep=lambda seconds: (in_rank.set(), time.sleep(seconds)),
        )
        chaos.add("rank.score", FaultSpec(latency_ms=150.0, latency_rate=1.0))

        def slow_request():
            with use_fault_injector(chaos):
                finished.append(recommender.recommend(
                    user_id=points[0].history.user_id,
                    day=points[0].day,
                    k=5,
                ))

        thread = Thread(target=slow_request)
        thread.start()
        assert in_rank.wait(5.0)        # the request is inside the model
        start = time.perf_counter()
        assert recommender.drain(timeout_s=10.0) is True
        drain_s = time.perf_counter() - start
        thread.join()
        # Drain blocked on the in-flight request and it completed normally.
        assert finished and not was_shed(finished[0])
        assert drain_s > 0.01
        assert recommender.lifecycle.state == "drained"
        assert recommender.lifecycle.in_flight == 0
        # Post-drain traffic is refused at the door but still answered.
        response = recommender.recommend(
            user_id=points[0].history.user_id, day=points[0].day, k=5
        )
        assert response.degraded and was_shed(response)
        assert response.fallbacks[0].reason == "draining"
        assert len(response) > 0

    def test_interactive_survives_when_background_sheds(self, trained_odnet,
                                                        od_dataset):
        """At moderate pressure only low-priority traffic is refused."""
        recommender = guarded_recommender(
            trained_odnet, od_dataset,
            shed=ShedPolicy(background_at=0.25, batch_at=0.75,
                            interactive_at=1.0),
        )
        guard = recommender.guard
        permit = guard.admit(priority=Priority.INTERACTIVE)  # 1/4 occupancy
        try:
            with pytest.raises(AdmissionRejected):
                guard.admit(priority=Priority.BACKGROUND)
            point = od_dataset.source.test_points[0]
            response = recommender.recommend(
                user_id=point.history.user_id, day=point.day, k=5,
                priority=Priority.INTERACTIVE,
            )
            assert not was_shed(response)
        finally:
            permit.release()

    def test_shed_responses_stay_out_of_latency_histogram(self, trained_odnet,
                                                          od_dataset):
        """Shed requests must not drag the AIMD calibration source down."""
        recommender = guarded_recommender(trained_odnet, od_dataset)
        point = od_dataset.source.test_points[0]
        with use_registry() as registry:
            recommender.recommend(
                user_id=point.history.user_id, day=point.day, k=5
            )
            baseline = registry.histogram("serving.latency_ms").count
            recommender.drain(timeout_s=1.0)
            recommender.recommend(          # refused at the door
                user_id=point.history.user_id, day=point.day, k=5
            )
            assert registry.histogram("serving.latency_ms").count == baseline
            assert registry.counter("serving.shed_requests").value == 1
