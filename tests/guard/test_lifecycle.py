"""ServerLifecycle: readiness gating, flush hooks, graceful drain."""

from __future__ import annotations

import threading

import pytest

from repro.guard import (
    DRAINED,
    DRAINING,
    READY,
    STARTING,
    AdmissionRejected,
    ServerLifecycle,
)


class TestReadiness:
    def test_starts_not_ready(self):
        lifecycle = ServerLifecycle()
        assert lifecycle.state == STARTING
        assert not lifecycle.ready
        with pytest.raises(AdmissionRejected) as excinfo:
            lifecycle.request_started()
        assert excinfo.value.reason == "not_ready"

    def test_mark_ready_opens_admission(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        assert lifecycle.state == READY and lifecycle.ready
        lifecycle.request_started()
        assert lifecycle.in_flight == 1
        lifecycle.request_finished()

    def test_cannot_revive_a_draining_server(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.drain()
        with pytest.raises(RuntimeError, match="drained"):
            lifecycle.mark_ready()

    def test_health_payload(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        health = lifecycle.health()
        assert health["state"] == READY and health["ready"]
        assert health["in_flight"] == 0 and health["uptime_s"] >= 0

    def test_finish_without_start_is_a_bug(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        with pytest.raises(RuntimeError, match="without a matching"):
            lifecycle.request_finished()


class TestDrain:
    def test_drain_refuses_new_requests(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        assert lifecycle.drain() is True
        assert lifecycle.state == DRAINED
        with pytest.raises(AdmissionRejected) as excinfo:
            lifecycle.request_started()
        assert excinfo.value.reason == "draining"

    def test_drain_runs_flush_hooks(self):
        flushed = []
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.add_flush_hook(lambda: flushed.append("batcher"))
        lifecycle.add_flush_hook(lambda: flushed.append("cache"))
        lifecycle.drain()
        assert flushed == ["batcher", "cache"]

    def test_drain_waits_for_in_flight(self):
        """drain() must not report drained while a request is running."""
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.request_started()
        drained = threading.Event()

        def drainer():
            assert lifecycle.drain(timeout_s=10.0) is True
            drained.set()

        thread = threading.Thread(target=drainer)
        thread.start()
        # The drainer is blocked on the in-flight request...
        assert not drained.wait(0.05)
        assert lifecycle.state == DRAINING
        # ...and completes only once the request finishes.
        lifecycle.request_finished()
        assert drained.wait(5.0)
        thread.join()
        assert lifecycle.state == DRAINED

    def test_drain_timeout_reports_false_and_stays_draining(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.request_started()
        assert lifecycle.drain(timeout_s=0.02) is False
        assert lifecycle.state == DRAINING      # admission stays closed
        with pytest.raises(AdmissionRejected):
            lifecycle.request_started()
        # A later drain() resumes waiting and can still complete.
        lifecycle.request_finished()
        assert lifecycle.drain(timeout_s=1.0) is True
        assert lifecycle.state == DRAINED

    def test_double_drain_is_idempotent(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        assert lifecycle.drain() is True
        assert lifecycle.drain() is True


class TestDrainConcurrency:
    """The races a cluster rolling-restart actually exercises: health
    probes hammering the lifecycle mid-drain, and drain() called twice
    concurrently (gateway-initiated roll + an operator's manual drain)."""

    def test_drain_under_concurrent_readiness_probes(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.request_started()
        stop = threading.Event()
        snapshots = []

        def probe():
            while not stop.is_set():
                health = lifecycle.health()
                snapshots.append((health["state"], health["ready"],
                                  health["in_flight"]))

        probes = [threading.Thread(target=probe) for _ in range(3)]
        for thread in probes:
            thread.start()

        def finisher():
            # Let the drain enter its wait loop before finishing.
            stop.wait(0.05)
            lifecycle.request_finished()

        finishing = threading.Thread(target=finisher)
        finishing.start()
        try:
            assert lifecycle.drain(timeout_s=10.0) is True
        finally:
            stop.set()
            finishing.join()
            for thread in probes:
                thread.join()
        assert lifecycle.state == DRAINED
        assert snapshots, "probes must have observed the lifecycle"
        for state, ready, in_flight in snapshots:
            # Every snapshot is internally consistent: once the drain
            # starts, no probe may ever see ready=True again.
            assert state in (READY, DRAINING, DRAINED)
            assert ready is (state == READY)
            assert in_flight >= 0
        probed_states = {state for state, _, _ in snapshots}
        assert DRAINING in probed_states or DRAINED in probed_states

    def test_concurrent_drains_both_report_drained(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.request_started()
        barrier = threading.Barrier(2)
        results = []
        lock = threading.Lock()

        def drainer():
            barrier.wait()
            outcome = lifecycle.drain(timeout_s=10.0)
            with lock:
                results.append(outcome)

        drainers = [threading.Thread(target=drainer) for _ in range(2)]
        for thread in drainers:
            thread.start()
        # Both drains are now blocked on the same in-flight request.
        lifecycle.request_finished()
        for thread in drainers:
            thread.join(timeout=15.0)
        assert results == [True, True]
        assert lifecycle.state == DRAINED

    def test_concurrent_drain_runs_flush_hooks_once(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        flushes = []
        lifecycle.add_flush_hook(lambda: flushes.append(1))
        barrier = threading.Barrier(2)

        def drainer():
            barrier.wait()
            lifecycle.drain(timeout_s=5.0)

        drainers = [threading.Thread(target=drainer) for _ in range(2)]
        for thread in drainers:
            thread.start()
        for thread in drainers:
            thread.join(timeout=10.0)
        assert flushes == [1]
        assert lifecycle.state == DRAINED
