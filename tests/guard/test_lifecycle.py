"""ServerLifecycle: readiness gating, flush hooks, graceful drain."""

from __future__ import annotations

import threading

import pytest

from repro.guard import (
    DRAINED,
    DRAINING,
    READY,
    STARTING,
    AdmissionRejected,
    ServerLifecycle,
)


class TestReadiness:
    def test_starts_not_ready(self):
        lifecycle = ServerLifecycle()
        assert lifecycle.state == STARTING
        assert not lifecycle.ready
        with pytest.raises(AdmissionRejected) as excinfo:
            lifecycle.request_started()
        assert excinfo.value.reason == "not_ready"

    def test_mark_ready_opens_admission(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        assert lifecycle.state == READY and lifecycle.ready
        lifecycle.request_started()
        assert lifecycle.in_flight == 1
        lifecycle.request_finished()

    def test_cannot_revive_a_draining_server(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.drain()
        with pytest.raises(RuntimeError, match="drained"):
            lifecycle.mark_ready()

    def test_health_payload(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        health = lifecycle.health()
        assert health["state"] == READY and health["ready"]
        assert health["in_flight"] == 0 and health["uptime_s"] >= 0

    def test_finish_without_start_is_a_bug(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        with pytest.raises(RuntimeError, match="without a matching"):
            lifecycle.request_finished()


class TestDrain:
    def test_drain_refuses_new_requests(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        assert lifecycle.drain() is True
        assert lifecycle.state == DRAINED
        with pytest.raises(AdmissionRejected) as excinfo:
            lifecycle.request_started()
        assert excinfo.value.reason == "draining"

    def test_drain_runs_flush_hooks(self):
        flushed = []
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.add_flush_hook(lambda: flushed.append("batcher"))
        lifecycle.add_flush_hook(lambda: flushed.append("cache"))
        lifecycle.drain()
        assert flushed == ["batcher", "cache"]

    def test_drain_waits_for_in_flight(self):
        """drain() must not report drained while a request is running."""
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.request_started()
        drained = threading.Event()

        def drainer():
            assert lifecycle.drain(timeout_s=10.0) is True
            drained.set()

        thread = threading.Thread(target=drainer)
        thread.start()
        # The drainer is blocked on the in-flight request...
        assert not drained.wait(0.05)
        assert lifecycle.state == DRAINING
        # ...and completes only once the request finishes.
        lifecycle.request_finished()
        assert drained.wait(5.0)
        thread.join()
        assert lifecycle.state == DRAINED

    def test_drain_timeout_reports_false_and_stays_draining(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        lifecycle.request_started()
        assert lifecycle.drain(timeout_s=0.02) is False
        assert lifecycle.state == DRAINING      # admission stays closed
        with pytest.raises(AdmissionRejected):
            lifecycle.request_started()
        # A later drain() resumes waiting and can still complete.
        lifecycle.request_finished()
        assert lifecycle.drain(timeout_s=1.0) is True
        assert lifecycle.state == DRAINED

    def test_double_drain_is_idempotent(self):
        lifecycle = ServerLifecycle()
        lifecycle.mark_ready()
        assert lifecycle.drain() is True
        assert lifecycle.drain() is True
