"""AdmissionController: the composed admission sequence and Permit."""

from __future__ import annotations

import pytest

from repro.guard import (
    AdaptiveLimitConfig,
    AdmissionController,
    AdmissionRejected,
    GuardConfig,
    Priority,
    ShedPolicy,
)
from repro.obs import use_registry
from repro.resilience import Deadline


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"max_concurrent": 0}, {"max_queue": -1},
        {"queue_timeout_ms": -1.0}, {"rate": 0.0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)


class TestAdmission:
    def test_admit_and_release(self):
        controller = AdmissionController(GuardConfig(max_concurrent=2))
        with controller.admit() as permit:
            assert permit.priority is Priority.INTERACTIVE
            assert controller.limiter.in_flight == 1
            assert controller.lifecycle.in_flight == 1
        assert controller.limiter.in_flight == 0
        assert controller.lifecycle.in_flight == 0

    def test_permit_release_is_idempotent(self):
        controller = AdmissionController(GuardConfig())
        permit = controller.admit()
        permit.release()
        permit.release()          # second release is a no-op, not a bug
        assert controller.limiter.in_flight == 0

    def test_queue_full_when_slots_and_queue_are_taken(self):
        controller = AdmissionController(
            GuardConfig(max_concurrent=1, max_queue=0, queue_timeout_ms=5.0,
                        shed=ShedPolicy(interactive_at=1.0))
        )
        held = controller.admit()
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit()
        # With zero queue the shed check fires at full occupancy first.
        assert excinfo.value.reason in ("queue_full", "shed:interactive")
        held.release()

    def test_rate_limit_rejects_the_burst_overflow(self):
        clock = FakeClock()
        controller = AdmissionController(
            GuardConfig(rate=100.0, burst=2.0), clock=clock
        )
        controller.admit().release()
        controller.admit().release()
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit()
        assert excinfo.value.reason == "rate_limited"
        clock.advance(1.0)        # refill
        controller.admit().release()

    def test_background_sheds_before_interactive(self):
        controller = AdmissionController(
            GuardConfig(max_concurrent=2, max_queue=2)
        )
        permits = [controller.admit(), controller.admit()]
        # pressure = 2/4 = 0.5 -> background sheds, interactive admitted.
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(priority=Priority.BACKGROUND)
        assert excinfo.value.reason == "shed:background"
        for permit in permits:
            permit.release()
        controller.admit(priority=Priority.BACKGROUND).release()

    def test_expired_deadline_cannot_wait_in_queue(self):
        controller = AdmissionController(
            GuardConfig(max_concurrent=1, max_queue=4,
                        queue_timeout_ms=10_000.0)
        )
        held = controller.admit()
        deadline_clock = FakeClock()
        dead = Deadline(budget_ms=1.0, clock=deadline_clock)
        deadline_clock.advance(1.0)       # budget fully spent
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit(deadline=dead)
        assert excinfo.value.reason == "queue_timeout"
        held.release()

    def test_drain_closes_admission(self):
        controller = AdmissionController(GuardConfig())
        assert controller.drain(timeout_s=1.0) is True
        with pytest.raises(AdmissionRejected) as excinfo:
            controller.admit()
        assert excinfo.value.reason == "draining"

    def test_admitted_latency_feeds_aimd(self):
        clock = FakeClock()
        controller = AdmissionController(
            GuardConfig(
                max_concurrent=4,
                adaptive=AdaptiveLimitConfig(
                    target_latency_ms=100.0, min_limit=1, max_limit=8,
                    window=2,
                ),
            ),
            clock=clock,
        )
        for _ in range(2):
            permit = controller.admit()
            clock.advance(0.4)    # 400ms >> 100ms target
            permit.release()
        assert controller.limiter.limit == 2
        assert controller.limiter.adaptations == 1

    def test_counters(self):
        with use_registry() as registry:
            controller = AdmissionController(GuardConfig(max_concurrent=1))
            controller.admit(priority=Priority.BATCH).release()
            assert registry.counter("guard.admitted").value == 1
            assert registry.counter(
                "guard.admitted", labels={"priority": "batch"}
            ).value == 1
