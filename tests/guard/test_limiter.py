"""ConcurrencyLimiter: bounded queue, typed rejections, AIMD adaptation."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.guard import (
    AdaptiveLimitConfig,
    AdmissionRejected,
    ConcurrencyLimiter,
)
from repro.obs import use_registry


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"target_latency_ms": 0.0},
        {"obs_percentile": 101.0},
        {"obs_multiplier": 0.0},
        {"min_limit": 0},
        {"min_limit": 8, "max_limit": 4},
        {"increase": 0.0},
        {"decrease": 1.0},
        {"decrease": 0.0},
        {"window": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveLimitConfig(**kwargs)

    def test_explicit_target_wins(self):
        config = AdaptiveLimitConfig(target_latency_ms=42.0)
        assert config.resolve_target_ms() == 42.0

    def test_obs_target_needs_enough_samples(self):
        config = AdaptiveLimitConfig(
            obs_min_samples=5, default_target_ms=99.0,
            obs_percentile=50, obs_multiplier=2,
        )
        with use_registry() as registry:
            histogram = registry.histogram("serving.latency_ms")
            for _ in range(4):
                histogram.observe(10.0)
            assert config.resolve_target_ms() == 99.0   # not enough yet
            histogram.observe(10.0)
            assert config.resolve_target_ms() == pytest.approx(20.0)


class TestAcquireRelease:
    def test_serial_acquire_release(self):
        limiter = ConcurrencyLimiter(limit=2, max_queue=0)
        limiter.acquire(timeout_s=0.0)
        limiter.acquire(timeout_s=0.0)
        assert limiter.in_flight == 2
        limiter.release()
        limiter.release()
        assert limiter.in_flight == 0

    def test_release_without_acquire_is_a_bug(self):
        with pytest.raises(RuntimeError, match="without a matching"):
            ConcurrencyLimiter(limit=1).release()

    def test_queue_full_rejects_immediately(self):
        limiter = ConcurrencyLimiter(limit=1, max_queue=0)
        limiter.acquire(timeout_s=0.0)
        with pytest.raises(AdmissionRejected) as excinfo:
            limiter.acquire(timeout_s=10.0)
        assert excinfo.value.reason == "queue_full"

    def test_queue_timeout_rejects_after_waiting(self):
        limiter = ConcurrencyLimiter(limit=1, max_queue=2)
        limiter.acquire(timeout_s=0.0)
        with pytest.raises(AdmissionRejected) as excinfo:
            limiter.acquire(timeout_s=0.02)
        assert excinfo.value.reason == "queue_timeout"
        assert limiter.queue_depth == 0       # the waiter cleaned up

    def test_waiter_gets_the_freed_slot(self):
        limiter = ConcurrencyLimiter(limit=1, max_queue=2)
        limiter.acquire(timeout_s=0.0)
        acquired = threading.Event()

        def waiter():
            limiter.acquire(timeout_s=5.0)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        while limiter.queue_depth == 0:       # waiter has queued up
            time.sleep(0.001)
        limiter.release()
        assert acquired.wait(5.0)
        thread.join()
        assert limiter.in_flight == 1

    def test_no_slot_lost_under_contention(self):
        limiter = ConcurrencyLimiter(limit=3, max_queue=32)
        peak = []
        lock = threading.Lock()
        active = [0]

        def client(_):
            limiter.acquire(timeout_s=10.0)
            with lock:
                active[0] += 1
                peak.append(active[0])
            with lock:
                active[0] -= 1
            limiter.release()

        with ThreadPoolExecutor(max_workers=12) as pool:
            list(pool.map(client, range(24)))
        assert max(peak) <= 3
        assert limiter.in_flight == 0 and limiter.queue_depth == 0


class TestPressure:
    def test_pressure_tracks_occupancy(self):
        limiter = ConcurrencyLimiter(limit=2, max_queue=2)
        assert limiter.pressure() == 0.0
        limiter.acquire(timeout_s=0.0)
        assert limiter.pressure() == pytest.approx(0.25)
        limiter.acquire(timeout_s=0.0)
        assert limiter.pressure() == pytest.approx(0.5)
        limiter.release()
        limiter.release()


class TestAIMD:
    def config(self, **kwargs):
        defaults = dict(
            target_latency_ms=100.0, min_limit=1, max_limit=8, window=4
        )
        defaults.update(kwargs)
        return AdaptiveLimitConfig(**defaults)

    def test_over_target_window_halves_the_limit(self):
        limiter = ConcurrencyLimiter(limit=4, adaptive=self.config())
        for _ in range(4):
            limiter.observe(400.0)
        assert limiter.limit == 2
        assert limiter.adaptations == 1

    def test_on_target_window_adds_to_the_limit(self):
        limiter = ConcurrencyLimiter(limit=4, adaptive=self.config())
        for _ in range(4):
            limiter.observe(10.0)
        assert limiter.limit == 5

    def test_limit_stays_within_bounds(self):
        limiter = ConcurrencyLimiter(
            limit=2, adaptive=self.config(min_limit=2, max_limit=3)
        )
        for _ in range(20):
            limiter.observe(500.0)
        assert limiter.limit == 2
        for _ in range(20):
            limiter.observe(1.0)
        assert limiter.limit == 3

    def test_release_latency_feeds_the_controller(self):
        limiter = ConcurrencyLimiter(limit=4, adaptive=self.config())
        for _ in range(4):
            limiter.acquire(timeout_s=0.0)
        for _ in range(4):
            limiter.release(latency_ms=400.0)
        assert limiter.limit == 2

    def test_gauges_exported(self):
        with use_registry() as registry:
            limiter = ConcurrencyLimiter(limit=4, adaptive=self.config())
            limiter.acquire(timeout_s=0.0)
            limiter.release(latency_ms=5.0)
            assert registry.gauge("guard.in_flight").value == 0
            assert registry.gauge("guard.limit").value == 4
