"""STP-UDGAT: GAT layers and the three STP graphs."""

import numpy as np
import pytest

from repro.baselines import GATLayer, STPUDGATRanker
from repro.baselines.stp_udgat import _build_knn_table, _table_from_counts
from repro.tensor import Tensor


class TestGATLayer:
    def test_shapes_and_gradients(self, rng):
        layer = GATLayer(8, rng)
        table = Tensor(rng.normal(size=(6, 8)), requires_grad=True)
        neighbors = rng.integers(0, 6, size=(6, 3))
        mask = np.ones((6, 3), dtype=bool)
        out = layer(table, neighbors, mask)
        assert out.shape == (6, 8)
        out.sum().backward()
        assert layer.w.grad is not None
        assert table.grad is not None

    def test_isolated_node_keeps_projection(self, rng):
        layer = GATLayer(4, rng)
        table = Tensor(rng.normal(size=(3, 4)))
        neighbors = np.zeros((3, 2), dtype=np.int64)
        mask = np.zeros((3, 2), dtype=bool)
        out = layer(table, neighbors, mask)
        expected = np.maximum((table.data @ layer.w.data), 0.0)
        np.testing.assert_allclose(out.data, expected, atol=1e-12)


class TestGraphConstruction:
    def test_knn_table_excludes_self(self):
        rng = np.random.default_rng(0)
        coords = rng.normal(size=(10, 2))
        from repro.graph import l2_distance_matrix

        neighbors, mask = _build_knn_table(l2_distance_matrix(coords), 4)
        assert neighbors.shape == (10, 4)
        for i in range(10):
            assert i not in neighbors[i]
        assert mask.all()

    def test_knn_cap_at_population(self):
        from repro.graph import l2_distance_matrix

        coords = np.random.default_rng(1).normal(size=(3, 2))
        neighbors, _ = _build_knn_table(l2_distance_matrix(coords), 10)
        assert neighbors.shape == (3, 2)

    def test_count_table_ranks_by_frequency(self):
        from collections import Counter

        counts = {0: Counter({3: 5, 1: 2, 2: 2})}
        neighbors, mask = _table_from_counts(counts, 4, cap=2)
        assert neighbors[0].tolist() == [3, 1]  # tie 1 vs 2 -> lower id
        assert mask[0].all()
        assert not mask[1].any()

    def test_interaction_graphs_symmetric(self, od_dataset):
        temporal, preference = STPUDGATRanker._interaction_graphs(
            od_dataset, window_days=30
        )
        for src, counter in list(preference.items())[:10]:
            for dst, count in counter.items():
                assert preference[dst][src] == count

    def test_interaction_graphs_exclude_test_bookings(self, od_dataset):
        _, preference = STPUDGATRanker._interaction_graphs(od_dataset, 30)
        total = sum(sum(c.values()) for c in preference.values())
        # Recompute using all bookings: must be strictly larger.
        from collections import Counter, defaultdict

        all_pref = defaultdict(Counter)
        for bookings in od_dataset.source.bookings_by_user.values():
            cities = [b.destination for b in bookings]
            for i in range(len(cities)):
                for j in range(i + 1, len(cities)):
                    if cities[i] != cities[j]:
                        all_pref[cities[i]][cities[j]] += 1
                        all_pref[cities[j]][cities[i]] += 1
        assert total < sum(sum(c.values()) for c in all_pref.values())


class TestRanker:
    def test_forward_and_training(self, od_dataset):
        from repro.train import TrainConfig, Trainer

        model = STPUDGATRanker(od_dataset, dim=8)
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        p_o, p_d = model(batch)
        assert np.all((p_o.data > 0) & (p_o.data < 1))
        history = Trainer(TrainConfig(epochs=1, seed=0)).fit(model, od_dataset)
        assert np.isfinite(history.final_loss)

    def test_lbsn_mode(self, lbsn_od_dataset):
        model = STPUDGATRanker(lbsn_od_dataset, dim=8)
        batch = next(lbsn_od_dataset.iter_batches("train", 8, shuffle=False))
        p_o, p_d = model.predict(batch)
        np.testing.assert_allclose(p_o, p_d)
