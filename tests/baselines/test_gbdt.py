"""From-scratch gradient boosting: trees, boosting, and the ranker."""

import numpy as np
import pytest

from repro.baselines import GBDTRanker, GradientBoostingClassifier, RegressionTree


class TestRegressionTree:
    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((2, 2)))

    def test_learns_axis_aligned_split(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(400, 3))
        labels = (X[:, 1] > 0).astype(float)
        prob = np.full(400, 0.5)
        grad = prob - labels
        hess = prob * (1 - prob)
        tree = RegressionTree(max_depth=1, min_samples_leaf=5)
        tree.fit(X, grad, hess)
        preds = tree.predict(X)
        assert np.corrcoef(preds, labels)[0, 1] > 0.9

    def test_respects_max_depth(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(200, 2))
        labels = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
        grad = 0.5 - labels
        hess = np.full(200, 0.25)
        stump = RegressionTree(max_depth=0)
        stump.fit(X, grad, hess)
        assert len(np.unique(stump.predict(X))) == 1

    def test_pure_node_becomes_leaf(self):
        X = np.zeros((50, 1))  # no split possible: constant feature
        grad = np.ones(50)
        hess = np.ones(50)
        tree = RegressionTree(max_depth=3)
        tree.fit(X, grad, hess)
        assert tree._root.is_leaf

    def test_min_samples_leaf_respected(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 1))
        grad = rng.normal(size=30)
        hess = np.ones(30)
        tree = RegressionTree(max_depth=1, min_samples_leaf=20)
        tree.fit(X, grad, hess)
        assert tree._root.is_leaf  # cannot split 30 into two >=20 halves


class TestBoosting:
    def test_fits_linear_boundary(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(600, 4))
        y = (X @ np.array([1.0, -1.0, 0.5, 0.0]) > 0).astype(float)
        model = GradientBoostingClassifier(n_trees=30, max_depth=3)
        model.fit(X, y)
        prob = model.predict_proba(X)
        accuracy = ((prob > 0.5) == y).mean()
        assert accuracy > 0.9

    def test_probabilities_in_unit_interval(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = (X[:, 0] > 0).astype(float)
        model = GradientBoostingClassifier(n_trees=10)
        model.fit(X, y)
        prob = model.predict_proba(X)
        assert np.all((prob > 0) & (prob < 1))

    def test_base_score_matches_prior(self):
        X = np.random.default_rng(0).normal(size=(100, 2))
        y = np.zeros(100)
        y[:25] = 1.0
        model = GradientBoostingClassifier(n_trees=1)
        model.fit(X, y)
        assert model._base_score == pytest.approx(np.log(0.25 / 0.75), rel=1e-6)

    def test_more_trees_fit_better(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(400, 3))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)

        def logloss(n):
            model = GradientBoostingClassifier(n_trees=n, max_depth=3,
                                               subsample=1.0)
            model.fit(X, y)
            p = np.clip(model.predict_proba(X), 1e-9, 1 - 1e-9)
            return -(y * np.log(p) + (1 - y) * np.log(1 - p)).mean()

        assert logloss(40) < logloss(5)


class TestGBDTRanker:
    def test_predict_before_fit_raises(self, od_dataset):
        batch = next(od_dataset.iter_batches("train", 4, shuffle=False))
        with pytest.raises(RuntimeError):
            GBDTRanker().predict(batch)

    def test_fit_and_rank(self, od_dataset):
        model = GBDTRanker(n_trees=10)
        model.fit(od_dataset)
        batch = next(od_dataset.iter_batches("test", 64, shuffle=False))
        p_o, p_d = model.predict(batch)
        assert p_o.shape == (64,)
        assert np.all((p_o > 0) & (p_o < 1))
        scores = model.score_pairs(batch)
        np.testing.assert_allclose(scores, 0.5 * p_o + 0.5 * p_d)

    def test_beats_chance(self, od_dataset):
        from repro.train import evaluate_auc

        model = GBDTRanker(n_trees=15)
        model.fit(od_dataset)
        metrics = evaluate_auc(model, od_dataset)
        assert metrics["AUC-O"] > 0.8
        assert metrics["AUC-D"] > 0.7

    def test_lbsn_mode_destination_only(self, lbsn_od_dataset):
        model = GBDTRanker(n_trees=8)
        model.fit(lbsn_od_dataset)
        batch = next(lbsn_od_dataset.iter_batches("test", 16, shuffle=False))
        p_o, p_d = model.predict(batch)
        np.testing.assert_allclose(p_o, p_d)
        np.testing.assert_allclose(model.score_pairs(batch), p_d)
