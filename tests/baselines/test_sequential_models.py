"""Sequential neural baselines: LSTM, STGN, LSTPM, STOD-PPA."""

import numpy as np
import pytest

from repro.baselines import (
    LSTMRanker,
    LSTPMRanker,
    STGNRanker,
    STODPPARanker,
)
from repro.train import TrainConfig, Trainer

ALL = [LSTMRanker, STGNRanker, LSTPMRanker, STODPPARanker]


@pytest.fixture(params=ALL, ids=lambda c: c.name)
def model(request, od_dataset):
    return request.param(od_dataset, dim=8, seed=0)


class TestCommonContract:
    def test_forward_probabilities(self, model, od_dataset):
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        p_o, p_d = model(batch)
        assert p_o.shape == (8,)
        assert np.all((p_o.data > 0) & (p_o.data < 1))
        assert np.all((p_d.data > 0) & (p_d.data < 1))

    def test_loss_gradients_reach_all_parameters(self, model, od_dataset):
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        model.zero_grad()
        model.loss(batch).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, missing

    def test_score_pairs_blend(self, model, od_dataset):
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        p_o, p_d = model.predict(batch)
        np.testing.assert_allclose(
            model.score_pairs(batch), 0.5 * p_o + 0.5 * p_d
        )

    def test_one_epoch_reduces_loss(self, model, od_dataset):
        history = Trainer(TrainConfig(epochs=2, seed=0)).fit(model, od_dataset)
        assert history.epoch_losses[-1] < history.epoch_losses[0]


class TestLbsnMode:
    @pytest.mark.parametrize("cls", ALL, ids=lambda c: c.name)
    def test_destination_only(self, cls, lbsn_od_dataset):
        model = cls(lbsn_od_dataset, dim=8, seed=0)
        assert model.tower_o is None
        batch = next(lbsn_od_dataset.iter_batches("train", 8, shuffle=False))
        p_o, p_d = model.predict(batch)
        np.testing.assert_allclose(p_o, p_d)


class TestDeltas:
    def test_long_deltas_masked_and_scaled(self, od_dataset):
        model = STGNRanker(od_dataset, dim=8)
        batch = next(od_dataset.iter_batches("train", 16, shuffle=False))
        delta_t, delta_d = model._long_deltas(batch, "d")
        assert delta_t.shape == batch.long_days.shape
        # Padded positions contribute zero intervals.
        assert np.all(delta_t[~batch.long_mask] == 0)
        assert np.all(delta_d[~batch.long_mask] == 0)
        assert np.all(delta_t >= 0)

    def test_first_step_has_zero_interval(self, od_dataset):
        model = STGNRanker(od_dataset, dim=8)
        batch = next(od_dataset.iter_batches("train", 16, shuffle=False))
        delta_t, delta_d = model._long_deltas(batch, "o")
        assert np.all(delta_t[:, 0] == 0)
        assert np.all(delta_d[:, 0] == 0)


class TestSTODPPACache:
    def test_joint_history_cached_within_forward(self, od_dataset):
        model = STODPPARanker(od_dataset, dim=8)
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        model._cache_key = None
        first = model._joint_history(batch)
        second = model._joint_history(batch)
        assert first is second

    def test_cache_invalidated_per_loss_call(self, od_dataset):
        model = STODPPARanker(od_dataset, dim=8)
        batch = next(od_dataset.iter_batches("train", 8, shuffle=False))
        model.loss(batch)
        key_after_first = model._cache_key
        model.loss(batch)
        assert model._cache_key == key_after_first  # recomputed, same batch id
