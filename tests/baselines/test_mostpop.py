"""MostPop heuristic baseline."""

import numpy as np
import pytest

from repro.baselines import MostPop


class TestMostPop:
    def test_predict_before_fit_raises(self, od_dataset):
        model = MostPop()
        batch = next(od_dataset.iter_batches("train", 4, shuffle=False))
        with pytest.raises(RuntimeError):
            model.predict(batch)

    def test_not_trainable_flag(self):
        assert MostPop.trainable is False

    def test_fit_returns_seconds(self, od_dataset):
        assert MostPop().fit(od_dataset) >= 0.0

    def test_current_city_scores_highest_origin(self, od_dataset):
        model = MostPop()
        model.fit(od_dataset)
        batch = next(od_dataset.iter_batches("train", 256, shuffle=False))
        p_o, _ = model.predict(batch)
        current = batch.candidate_origin == batch.current_city
        if current.any() and (~current).any():
            assert p_o[current].min() > p_o[~current].mean()

    def test_destination_score_is_popularity(self, od_dataset):
        model = MostPop()
        model.fit(od_dataset)
        batch = next(od_dataset.iter_batches("train", 64, shuffle=False))
        _, p_d = model.predict(batch)
        np.testing.assert_allclose(
            p_d, model._dest_pop[batch.candidate_destination]
        )

    def test_popularity_normalised(self, od_dataset):
        model = MostPop()
        model.fit(od_dataset)
        assert model._dest_pop.max() == pytest.approx(1.0)
        assert model._origin_pop.min() >= 0.0
