"""Seed-averaging of comparison results."""

import pytest

from repro.experiments.comparison import (
    ComparisonResult,
    MethodResult,
    average_results,
)


def _result(values: dict[str, float], train=1.0, infer=2.0):
    result = ComparisonResult(dataset_name="d", scale="tiny")
    for name, value in values.items():
        result.rows.append(
            MethodResult(name, {"HR@5": value}, train, infer)
        )
    return result


class TestAverage:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_results([])

    def test_mismatched_methods_rejected(self):
        with pytest.raises(ValueError):
            average_results([_result({"A": 0.5}), _result({"B": 0.5})])

    def test_metrics_averaged(self):
        averaged = average_results(
            [_result({"A": 0.4, "B": 0.2}), _result({"A": 0.6, "B": 0.4})]
        )
        assert averaged.metric("A", "HR@5") == pytest.approx(0.5)
        assert averaged.metric("B", "HR@5") == pytest.approx(0.3)
        assert "x2 seeds" in averaged.scale

    def test_efficiency_averaged(self):
        averaged = average_results(
            [_result({"A": 0.5}, train=1.0), _result({"A": 0.5}, train=3.0)]
        )
        assert averaged.row("A").train_seconds == pytest.approx(2.0)

    def test_single_result_identity(self):
        averaged = average_results([_result({"A": 0.7})])
        assert averaged.metric("A", "HR@5") == pytest.approx(0.7)
