"""Formatting helpers of the experiment runners."""

import numpy as np

from repro.experiments.abtest import format_abtest
from repro.serving.abtest import ABTestResult


class TestFormatAbtest:
    def test_renders_days_and_mean(self):
        result = ABTestResult(methods=["ODNET", "MostPop"], days=3)
        for method, rate in (("ODNET", 3.0), ("MostPop", 1.0)):
            result.clicks[method] = np.full(3, rate)
            result.impressions[method] = np.full(3, 10.0)
        text = format_abtest(result)
        assert "day 1" in text and "day 3" in text and "mean" in text
        assert "ODNET" in text and "0.3000" in text
        assert "MostPop" in text and "0.1000" in text

    def test_improvement_zero_baseline_raises(self):
        import pytest

        result = ABTestResult(methods=["A", "B"], days=1)
        result.clicks["A"] = np.array([1.0])
        result.impressions["A"] = np.array([10.0])
        result.clicks["B"] = np.array([0.0])
        result.impressions["B"] = np.array([10.0])
        with pytest.raises(ZeroDivisionError):
            result.improvement("A", "B")
