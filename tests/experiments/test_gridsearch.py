"""Grid search over ODNET configurations."""

import pytest

from repro.core import ODNETConfig
from repro.experiments import run_grid_search
from repro.train import TrainConfig

FAST = ODNETConfig(dim=8, num_heads=2, depth=1, expert_dim=16, tower_hidden=8)
FAST_TRAIN = TrainConfig(epochs=1, seed=0)


class TestGridSearch:
    def test_unknown_field_rejected(self, od_dataset):
        with pytest.raises(ValueError):
            run_grid_search(od_dataset, {"banana": [1]})

    def test_empty_grid_rejected(self, od_dataset):
        with pytest.raises(ValueError):
            run_grid_search(od_dataset, {})

    def test_cartesian_product_evaluated(self, od_dataset):
        result = run_grid_search(
            od_dataset,
            {"num_heads": [1, 2], "depth": [0, 1]},
            base_config=FAST,
            train_config=FAST_TRAIN,
            num_candidates=8,
            max_tasks=20,
        )
        assert len(result.points) == 4
        combos = {(p.params["num_heads"], p.params["depth"])
                  for p in result.points}
        assert combos == {(1, 0), (1, 1), (2, 0), (2, 1)}

    def test_best_and_table(self, od_dataset):
        result = run_grid_search(
            od_dataset,
            {"depth": [0, 1]},
            base_config=FAST,
            train_config=FAST_TRAIN,
            num_candidates=8,
            max_tasks=20,
        )
        best = result.best()
        assert best.metrics["MRR@5"] == max(
            p.metrics["MRR@5"] for p in result.points
        )
        table = result.format_table()
        assert "depth" in table and "MRR@5" in table
