"""Experiment runners (registry, scales, tiny end-to-end comparisons)."""

import numpy as np
import pytest

from repro.core import ODNETConfig
from repro.experiments import (
    ABTEST_METHODS,
    ALL_METHODS,
    LBSN_METHODS,
    TINY,
    build_method,
    get_scale,
    run_fliggy_comparison,
    run_heads_sweep,
    run_lbsn_comparison,
)

FAST_CONFIG = ODNETConfig(dim=8, num_heads=2, depth=1, expert_dim=16,
                          tower_hidden=8)


class TestRegistry:
    def test_all_methods_buildable(self, od_dataset):
        for name in ALL_METHODS:
            model = build_method(name, od_dataset, FAST_CONFIG)
            assert model.name == name

    def test_unknown_method_rejected(self, od_dataset):
        with pytest.raises(ValueError):
            build_method("AlphaRank", od_dataset)

    def test_lbsn_methods_exclude_multitask(self):
        assert "ODNET" not in LBSN_METHODS
        assert "ODNET-G" not in LBSN_METHODS
        assert set(LBSN_METHODS) < set(ALL_METHODS)

    def test_abtest_has_eight_methods(self):
        assert len(ABTEST_METHODS) == 8
        assert "ODNET" in ABTEST_METHODS


class TestScales:
    def test_get_scale(self):
        assert get_scale("tiny") is TINY
        with pytest.raises(ValueError):
            get_scale("galactic")

    def test_configs_derived_from_scale(self):
        scale = get_scale("tiny")
        assert scale.fliggy_config().num_users == scale.num_users
        assert scale.lbsn_config("foursquare").num_users == scale.lbsn_users
        assert scale.train_config().epochs == scale.epochs


class TestComparisonRunners:
    def test_fliggy_comparison_tiny(self):
        result = run_fliggy_comparison(
            scale="tiny", methods=("MostPop", "GBDT"),
            model_config=FAST_CONFIG, measure_efficiency=True,
        )
        assert [r.name for r in result.rows] == ["MostPop", "GBDT"]
        gbdt = result.row("GBDT")
        assert gbdt.train_seconds > 0
        assert gbdt.inference_ms > 0
        assert "AUC-O" in gbdt.metrics and "HR@5" in gbdt.metrics
        table = result.format_table()
        assert "GBDT" in table and "train(s)" in table
        assert result.best_method("HR@5") in ("MostPop", "GBDT")

    def test_lbsn_comparison_tiny(self):
        result = run_lbsn_comparison(
            dataset_name="foursquare", scale="tiny",
            methods=("MostPop", "GBDT"), model_config=FAST_CONFIG,
        )
        assert result.dataset_name == "foursquare"
        assert "AUC" in result.row("GBDT").metrics

    def test_lbsn_rejects_multitask(self):
        with pytest.raises(ValueError):
            run_lbsn_comparison(methods=("ODNET",), scale="tiny")

    def test_missing_row_raises(self):
        result = run_fliggy_comparison(
            scale="tiny", methods=("MostPop",), measure_efficiency=False
        )
        with pytest.raises(KeyError):
            result.row("ODNET")


class TestSweeps:
    def test_heads_sweep_tiny(self):
        result = run_heads_sweep(scale="tiny", heads=(1, 2))
        assert [p.value for p in result.points] == [1, 2]
        assert all(np.isfinite(p.hr5) for p in result.points)
        assert all(p.train_seconds > 0 for p in result.points)
        assert result.best().value in (1, 2)
        assert "HR@5" in result.format_table()
        series = result.series()
        assert series["num_heads"] == [1, 2]
