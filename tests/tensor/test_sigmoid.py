"""Sigmoid: numerical stability and the single-exponential rewrite."""

import numpy as np

from repro.tensor import Tensor


class TestSigmoid:
    def test_matches_reference_on_moderate_inputs(self):
        x = np.linspace(-20.0, 20.0, 401)
        out = Tensor(x).sigmoid()
        np.testing.assert_allclose(out.data, 1.0 / (1.0 + np.exp(-x)),
                                   rtol=1e-12, atol=0.0)

    def test_extreme_inputs_saturate_without_warnings(self):
        x = np.array([-1e9, -1000.0, -600.0, 600.0, 1000.0, 1e9])
        with np.errstate(over="raise", invalid="raise"):
            out = Tensor(x).sigmoid().data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[:3], 0.0, atol=1e-200)
        np.testing.assert_allclose(out[3:], 1.0)

    def test_symmetry(self):
        # sigmoid(-x) == 1 - sigmoid(x): the two np.where branches must
        # agree exactly since they share the same exponential.
        x = np.linspace(0.0, 30.0, 301)
        pos = Tensor(x).sigmoid().data
        neg = Tensor(-x).sigmoid().data
        np.testing.assert_allclose(neg, 1.0 - pos, rtol=0.0, atol=1e-15)

    def test_gradient(self):
        x = Tensor(np.array([-3.0, -0.5, 0.0, 0.5, 3.0]),
                   requires_grad=True)
        out = x.sigmoid()
        out.sum().backward()
        s = out.data
        np.testing.assert_allclose(x.grad, s * (1.0 - s), rtol=1e-12)
