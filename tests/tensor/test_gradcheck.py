"""Gradient correctness against central finite differences.

Every differentiable primitive and the composite functions used by ODNET
are checked, including hypothesis-driven property tests on random shapes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, concat, functional as F, maximum, stack, where

from .gradcheck import assert_gradients_match


def _rand(*shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestPrimitiveGradients:
    def test_add_broadcast(self):
        assert_gradients_match(lambda a, b: a + b, _rand(3, 4), _rand(4))

    def test_sub(self):
        assert_gradients_match(lambda a, b: a - b, _rand(3), _rand(3))

    def test_mul_broadcast(self):
        assert_gradients_match(lambda a, b: a * b, _rand(2, 3), _rand(3))

    def test_div(self):
        b = np.abs(_rand(3)) + 1.0
        assert_gradients_match(lambda a, c: a / c, _rand(3), b)

    def test_pow(self):
        assert_gradients_match(lambda a: a ** 3, _rand(4))

    def test_neg(self):
        assert_gradients_match(lambda a: -a, _rand(4))

    def test_matmul(self):
        assert_gradients_match(lambda a, b: a @ b, _rand(3, 4), _rand(4, 2))

    def test_matmul_batched(self):
        assert_gradients_match(
            lambda a, b: a @ b, _rand(2, 3, 4), _rand(2, 4, 2)
        )

    def test_matmul_broadcast_batch(self):
        assert_gradients_match(lambda a, b: a @ b, _rand(2, 3, 4), _rand(4, 2))

    def test_exp_log(self):
        assert_gradients_match(lambda a: a.exp(), _rand(4))
        assert_gradients_match(lambda a: a.log(), np.abs(_rand(4)) + 0.5)

    def test_sqrt(self):
        assert_gradients_match(lambda a: a.sqrt(), np.abs(_rand(4)) + 0.5)

    def test_relu_sigmoid_tanh(self):
        assert_gradients_match(lambda a: a.relu(), _rand(5) + 0.01)
        assert_gradients_match(lambda a: a.sigmoid(), _rand(5))
        assert_gradients_match(lambda a: a.tanh(), _rand(5))

    def test_abs(self):
        assert_gradients_match(lambda a: a.abs(), _rand(5) + 0.01)

    def test_clip(self):
        assert_gradients_match(lambda a: a.clip(-0.5, 0.5), _rand(6) * 2)

    def test_sum_mean_axes(self):
        assert_gradients_match(lambda a: a.sum(axis=0), _rand(3, 4))
        assert_gradients_match(lambda a: a.mean(axis=1), _rand(3, 4))
        assert_gradients_match(
            lambda a: a.sum(axis=1, keepdims=True), _rand(3, 4)
        )

    def test_max(self):
        assert_gradients_match(lambda a: a.max(axis=1), _rand(3, 4))

    def test_reshape_transpose(self):
        assert_gradients_match(lambda a: a.reshape(6, 2), _rand(2, 3, 2))
        assert_gradients_match(lambda a: a.transpose(1, 0, 2), _rand(2, 3, 2))
        assert_gradients_match(lambda a: a.swapaxes(0, 1), _rand(2, 3))

    def test_getitem_and_take(self):
        idx = np.array([[0, 2], [1, 1]])
        assert_gradients_match(lambda a: a[idx], _rand(4, 3))
        assert_gradients_match(lambda a: a.take(idx), _rand(4, 3))

    def test_softmax_log_softmax(self):
        assert_gradients_match(lambda a: a.softmax(axis=-1), _rand(3, 4))
        assert_gradients_match(lambda a: a.log_softmax(axis=-1), _rand(3, 4))

    def test_masked_fill(self):
        mask = np.array([True, False, True, False])
        assert_gradients_match(lambda a: a.masked_fill(mask, 0.0), _rand(4))

    def test_concat_stack(self):
        assert_gradients_match(
            lambda a, b: concat([a, b], axis=1), _rand(2, 3), _rand(2, 2)
        )
        assert_gradients_match(
            lambda a, b: stack([a, b], axis=0), _rand(3), _rand(3)
        )

    def test_where_maximum(self):
        cond = np.array([True, False, True])
        assert_gradients_match(
            lambda a, b: where(cond, a, b), _rand(3), _rand(3, seed=1)
        )
        assert_gradients_match(
            lambda a, b: maximum(a, b), _rand(3), _rand(3, seed=1)
        )

    def test_expand_squeeze(self):
        assert_gradients_match(lambda a: a.expand_dims(1), _rand(3, 2))
        assert_gradients_match(
            lambda a: a.expand_dims(0).squeeze(0), _rand(3, 2)
        )


class TestFunctionalGradients:
    def test_bce_on_probabilities(self):
        targets = np.array([1.0, 0.0, 1.0, 0.0])
        assert_gradients_match(
            lambda a: F.binary_cross_entropy(a.sigmoid(), targets), _rand(4)
        )

    def test_bce_with_logits_matches_probability_form(self):
        logits = _rand(64)
        targets = (np.random.default_rng(3).random(64) > 0.5).astype(float)
        a = F.binary_cross_entropy(Tensor(logits).sigmoid(), targets)
        b = F.binary_cross_entropy_with_logits(Tensor(logits), targets)
        np.testing.assert_allclose(a.data, b.data, atol=1e-10)

    def test_bce_with_logits_gradients(self):
        targets = np.array([1.0, 0.0, 1.0])
        assert_gradients_match(
            lambda a: F.binary_cross_entropy_with_logits(a, targets), _rand(3)
        )

    def test_masked_softmax_gradients(self):
        mask = np.array([[True, True, False], [True, False, False]])
        assert_gradients_match(
            lambda a: F.masked_softmax(a, mask), _rand(2, 3)
        )

    def test_masked_softmax_zeroes_fully_masked_rows(self):
        scores = Tensor(_rand(2, 3))
        mask = np.array([[True, True, True], [False, False, False]])
        weights = F.masked_softmax(scores, mask)
        np.testing.assert_allclose(weights.data[1], np.zeros(3))
        np.testing.assert_allclose(weights.data[0].sum(), 1.0)

    def test_attention_gradients(self):
        assert_gradients_match(
            lambda q, k, v: F.scaled_dot_product_attention(q, k, v)[0],
            _rand(2, 3, 4), _rand(2, 5, 4, seed=1), _rand(2, 5, 4, seed=2),
        )

    def test_attention_with_mask_gradients(self):
        mask = np.ones((2, 1, 3, 5), dtype=bool)
        mask[0, 0, :, 3:] = False
        assert_gradients_match(
            lambda q, k, v: F.scaled_dot_product_attention(q, k, v, mask)[0],
            _rand(2, 3, 4), _rand(2, 5, 4, seed=1), _rand(2, 5, 4, seed=2),
        )

    def test_masked_mean_pool_gradients(self):
        mask = np.array([[True, True, False], [True, False, False]])
        assert_gradients_match(
            lambda x: F.masked_mean_pool(x, mask), _rand(2, 3, 4)
        )

    def test_masked_mean_pool_ignores_padding(self):
        x = np.ones((1, 3, 2))
        x[0, 2] = 100.0
        mask = np.array([[True, True, False]])
        out = F.masked_mean_pool(Tensor(x), mask)
        np.testing.assert_allclose(out.data, np.ones((1, 2)))

    def test_dropout_eval_is_identity(self):
        x = Tensor(_rand(5))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones(20000))
        out = F.dropout(x, 0.25, rng, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02


class TestPropertyBased:
    @given(
        rows=st.integers(1, 5),
        cols=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_softmax_gradient_random_shapes(self, rows, cols, seed):
        data = np.random.default_rng(seed).normal(size=(rows, cols))
        assert_gradients_match(lambda a: a.softmax(axis=-1), data)

    @given(
        n=st.integers(1, 6),
        m=st.integers(1, 6),
        k=st.integers(1, 6),
        seed=st.integers(0, 10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_matmul_gradient_random_shapes(self, n, m, k, seed):
        rng = np.random.default_rng(seed)
        assert_gradients_match(
            lambda a, b: a @ b, rng.normal(size=(n, m)), rng.normal(size=(m, k))
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_chain_rule_composition(self, seed):
        data = np.random.default_rng(seed).normal(size=(3, 3))
        assert_gradients_match(
            lambda a: ((a @ a).tanh() * a.sigmoid()).sum(axis=0), data
        )

    @given(seed=st.integers(0, 10_000), rate=st.floats(0.0, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_sigmoid_output_in_unit_interval(self, seed, rate):
        data = np.random.default_rng(seed).normal(size=10) * (1 + 10 * rate)
        out = Tensor(data).sigmoid().data
        assert np.all(out >= 0.0) and np.all(out <= 1.0)
