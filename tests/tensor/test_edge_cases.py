"""Tensor edge cases and failure modes."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, no_grad, stack


class TestDtypeGuards:
    def test_integer_index_tensors_flow_through_getitem(self):
        weights = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        indices = Tensor(np.array([0, 2]))
        out = weights[indices]
        out.sum().backward()
        np.testing.assert_allclose(weights.grad[0], np.ones(3))
        np.testing.assert_allclose(weights.grad[1], np.zeros(3))

    def test_integer_dtype_preserved(self):
        t = Tensor(np.array([1, 2], dtype=np.int32))
        assert t.dtype.kind == "i"

    def test_scalar_tensor_roundtrip(self):
        t = Tensor(3.0, requires_grad=True)
        (t * t).backward()
        np.testing.assert_allclose(t.grad, 6.0)


class TestGraphSemantics:
    def test_gradient_through_diamond(self):
        # x -> a, b -> c; both paths must contribute exactly once.
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 5.0
        c = a + b
        c.sum().backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_deep_chain_does_not_recurse(self):
        x = Tensor(np.ones(2), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(2))

    def test_reuse_of_output_in_two_losses(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        hidden = x.tanh()
        (hidden.sum() + (hidden * hidden).sum()).backward()
        manual = (1 - np.tanh(x.data) ** 2) * (1 + 2 * np.tanh(x.data))
        np.testing.assert_allclose(x.grad, manual)

    def test_no_grad_inside_graph_detaches(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0
        with no_grad():
            z = y * 10.0
        assert not z.requires_grad
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0, 2.0])


class TestCombinatorEdges:
    def test_concat_single_tensor(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = concat([t], axis=0)
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones((2, 2)))

    def test_stack_gradient_split(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stacked = stack([a, b], axis=0)
        (stacked[0] * 2.0 + stacked[1] * 3.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0] * 3)
        np.testing.assert_allclose(b.grad, [3.0] * 3)


class TestNumericalStability:
    def test_softmax_with_mixed_magnitudes(self):
        t = Tensor(np.array([-1e9, 0.0, 1e9]))
        out = t.softmax().data
        np.testing.assert_allclose(out, [0.0, 0.0, 1.0], atol=1e-12)

    def test_log_softmax_no_overflow(self):
        t = Tensor(np.array([1e8, 1e8]))
        out = t.log_softmax().data
        np.testing.assert_allclose(out, [np.log(0.5)] * 2)

    def test_bce_at_extreme_probabilities(self):
        from repro.tensor import functional as F

        p = Tensor(np.array([1.0, 0.0]))
        loss = F.binary_cross_entropy(p, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6
