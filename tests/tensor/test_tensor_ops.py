"""Forward-value and API tests for the Tensor core."""

import numpy as np
import pytest

from repro.tensor import Tensor, as_tensor, concat, maximum, no_grad, stack, where


class TestConstruction:
    def test_float_data_is_float64(self):
        t = Tensor([1.0, 2.0])
        assert t.dtype == np.float64

    def test_int_data_stays_int(self):
        t = Tensor([1, 2, 3])
        assert t.dtype.kind == "i"

    def test_int_tensor_cannot_require_grad(self):
        with pytest.raises(TypeError):
            Tensor([1, 2], requires_grad=True)

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_shape_ndim_size(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2

    def test_item_and_numpy(self):
        t = Tensor(3.5)
        assert t.item() == 3.5
        assert isinstance(t.numpy(), np.ndarray)

    def test_detach_drops_grad(self):
        t = Tensor([1.0], requires_grad=True)
        assert not t.detach().requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad=True" in repr(Tensor([1.0], requires_grad=True))

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t
        assert isinstance(as_tensor([1.0]), Tensor)


class TestArithmetic:
    def test_add_broadcast(self):
        out = Tensor(np.ones((2, 3))) + Tensor(np.arange(3.0))
        np.testing.assert_allclose(out.data, np.ones((2, 3)) + np.arange(3.0))

    def test_radd_with_numpy_left(self):
        out = np.ones(3) + Tensor(np.arange(3.0))
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.data, [1.0, 2.0, 3.0])

    def test_numpy_left_mul_defers_to_tensor(self):
        out = np.full(3, 2.0) * Tensor(np.arange(3.0))
        assert isinstance(out, Tensor)
        np.testing.assert_allclose(out.data, [0.0, 2.0, 4.0])

    def test_sub_and_rsub(self):
        a = Tensor([3.0])
        np.testing.assert_allclose((a - 1.0).data, [2.0])
        np.testing.assert_allclose((5.0 - a).data, [2.0])

    def test_div_and_rdiv(self):
        a = Tensor([2.0])
        np.testing.assert_allclose((a / 4.0).data, [0.5])
        np.testing.assert_allclose((4.0 / a).data, [2.0])

    def test_pow_scalar_only(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul_requires_2d(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]) @ Tensor([1.0, 2.0])

    def test_matmul_batched_value(self):
        a = np.random.default_rng(0).normal(size=(2, 3, 4))
        b = np.random.default_rng(1).normal(size=(2, 4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_comparisons_return_numpy(self):
        mask = Tensor([1.0, 2.0]) > 1.5
        assert isinstance(mask, np.ndarray)
        assert mask.tolist() == [False, True]


class TestShapes:
    def test_reshape_accepts_tuple_or_args(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)

    def test_transpose_default_reverses(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)
        assert t.T.shape == (4, 3, 2)

    def test_swapaxes(self):
        t = Tensor(np.zeros((2, 3, 4)))
        assert t.swapaxes(0, 2).shape == (4, 3, 2)

    def test_expand_squeeze_roundtrip(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.expand_dims(1).squeeze(1).shape == (2, 3)

    def test_getitem_row(self):
        t = Tensor(np.arange(6.0).reshape(2, 3))
        np.testing.assert_allclose(t[1].data, [3.0, 4.0, 5.0])

    def test_getitem_with_integer_array(self):
        t = Tensor(np.arange(10.0))
        idx = np.array([0, 0, 5])
        np.testing.assert_allclose(t[idx].data, [0.0, 0.0, 5.0])

    def test_take_axis0(self):
        t = Tensor(np.arange(12.0).reshape(4, 3))
        out = t.take(np.array([[0, 3], [1, 1]]))
        assert out.shape == (2, 2, 3)


class TestReductions:
    def test_sum_axis_keepdims(self):
        t = Tensor(np.ones((2, 3)))
        assert t.sum(axis=1).shape == (2,)
        assert t.sum(axis=1, keepdims=True).shape == (2, 1)
        assert t.sum().item() == 6.0

    def test_mean_matches_numpy(self):
        data = np.random.default_rng(0).normal(size=(3, 4))
        np.testing.assert_allclose(
            Tensor(data).mean(axis=0).data, data.mean(axis=0)
        )

    def test_max_matches_numpy(self):
        data = np.random.default_rng(1).normal(size=(3, 4))
        np.testing.assert_allclose(
            Tensor(data).max(axis=1).data, data.max(axis=1)
        )


class TestNonlinearities:
    def test_softmax_rows_sum_to_one(self):
        out = Tensor(np.random.default_rng(0).normal(size=(4, 5))).softmax()
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(4))

    def test_softmax_is_stable_for_large_inputs(self):
        out = Tensor([1000.0, 1000.0]).softmax()
        np.testing.assert_allclose(out.data, [0.5, 0.5])

    def test_sigmoid_extremes(self):
        out = Tensor([-1000.0, 0.0, 1000.0]).sigmoid()
        np.testing.assert_allclose(out.data, [0.0, 0.5, 1.0], atol=1e-12)

    def test_log_softmax_consistency(self):
        data = np.random.default_rng(2).normal(size=(3, 4))
        np.testing.assert_allclose(
            Tensor(data).log_softmax().data,
            np.log(Tensor(data).softmax().data),
            atol=1e-12,
        )

    def test_relu_clip_abs(self):
        t = Tensor([-2.0, 0.5, 3.0])
        np.testing.assert_allclose(t.relu().data, [0.0, 0.5, 3.0])
        np.testing.assert_allclose(t.clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])
        np.testing.assert_allclose(t.abs().data, [2.0, 0.5, 3.0])

    def test_masked_fill(self):
        t = Tensor([1.0, 2.0, 3.0])
        out = t.masked_fill(np.array([True, False, True]), -1.0)
        np.testing.assert_allclose(out.data, [-1.0, 2.0, -1.0])


class TestCombinators:
    def test_concat_values(self):
        out = concat([Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))], axis=1)
        assert out.shape == (2, 5)

    def test_stack_values(self):
        out = stack([Tensor(np.ones(3)), Tensor(np.zeros(3))], axis=0)
        assert out.shape == (2, 3)

    def test_where_select(self):
        out = where(np.array([True, False]), Tensor([1.0, 1.0]), Tensor([9.0, 9.0]))
        np.testing.assert_allclose(out.data, [1.0, 9.0])

    def test_maximum(self):
        out = maximum(Tensor([1.0, 5.0]), Tensor([3.0, 2.0]))
        np.testing.assert_allclose(out.data, [3.0, 5.0])


class TestAutogradBasics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_grad_accumulates_across_backward_calls(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_allclose(t.grad, [4.0])

    def test_no_grad_blocks_graph(self):
        t = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_no_grad_restores_on_exception(self):
        from repro.tensor import is_grad_enabled

        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError()
        assert is_grad_enabled()

    def test_shared_subexpression_gradient(self):
        t = Tensor([2.0], requires_grad=True)
        y = t * t + t * 3.0
        y.sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])  # 2x + 3
