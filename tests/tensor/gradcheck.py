"""Finite-difference gradient checking used across the tensor tests."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def numerical_gradients(fn, arrays, eps: float = 1e-6):
    """Central-difference gradients of sum(fn(*arrays)) wrt each array."""
    gradients = []
    for target_index, target in enumerate(arrays):
        grad = np.zeros_like(target, dtype=np.float64)
        flat = target.ravel()
        grad_flat = grad.ravel()
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            up = fn(*[Tensor(a) for a in arrays]).data.sum()
            flat[i] = original - eps
            down = fn(*[Tensor(a) for a in arrays]).data.sum()
            flat[i] = original
            grad_flat[i] = (up - down) / (2 * eps)
        gradients.append(grad)
    return gradients


def assert_gradients_match(fn, *arrays, atol: float = 1e-5):
    """Backprop through sum(fn(...)) and compare against finite differences."""
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    tensors = [Tensor(a.copy(), requires_grad=True) for a in arrays]
    out = fn(*tensors)
    out.sum().backward() if out.data.size > 1 else out.backward()
    numeric = numerical_gradients(fn, [a.copy() for a in arrays])
    for tensor, expected in zip(tensors, numeric):
        assert tensor.grad is not None, "missing gradient"
        np.testing.assert_allclose(tensor.grad, expected, atol=atol)
