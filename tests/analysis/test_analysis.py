"""ASCII charts and CSV export."""

import csv

import numpy as np
import pytest

from repro.analysis import (
    abtest_to_rows,
    ascii_bar_chart,
    ascii_line_chart,
    comparison_to_rows,
    write_csv,
)


class TestLineChart:
    def test_renders_markers_and_legend(self):
        chart = ascii_line_chart(
            [1, 2, 3, 4],
            {"HR@5": [0.5, 0.6, 0.7, 0.65], "MRR@5": [0.3, 0.4, 0.45, 0.44]},
            title="Figure 6(a)",
        )
        assert "Figure 6(a)" in chart
        assert "o=HR@5" in chart
        assert "x=MRR@5" in chart
        assert "o" in chart

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], {"a": [1.0]})

    def test_requires_two_points(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1], {"a": [1.0]})

    def test_constant_series_does_not_crash(self):
        chart = ascii_line_chart([1, 2, 3], {"flat": [2.0, 2.0, 2.0]})
        assert "flat" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_line_chart([1, 2], {})


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = ascii_bar_chart(["A", "B"], [0.1, 0.2])
        lines = chart.splitlines()
        assert lines[0].count("#") < lines[1].count("#")

    def test_alignment_error(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["A"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])


class TestCSV:
    def test_roundtrip(self, tmp_path):
        path = write_csv(tmp_path / "out", {"x": [1, 2], "y": [0.1, 0.2]})
        assert path.suffix == ".csv"
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "y"]
        assert rows[1] == ["1", "0.1"]

    def test_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "bad", {"x": [1], "y": [1, 2]})


class TestAdapters:
    def test_comparison_rows(self):
        from repro.experiments.comparison import ComparisonResult, MethodResult

        result = ComparisonResult(dataset_name="d", scale="tiny")
        result.rows.append(MethodResult("A", {"HR@5": 0.5}, 1.0, 2.0))
        result.rows.append(MethodResult("B", {"HR@5": 0.6}, 2.0, 3.0))
        columns = comparison_to_rows(result)
        assert columns["method"] == ["A", "B"]
        assert columns["HR@5"] == [0.5, 0.6]
        assert columns["train_seconds"] == [1.0, 2.0]

    def test_abtest_rows(self):
        from repro.serving.abtest import ABTestResult

        result = ABTestResult(methods=["M"], days=2)
        result.clicks["M"] = np.array([1.0, 2.0])
        result.impressions["M"] = np.array([10.0, 10.0])
        columns = abtest_to_rows(result)
        assert columns["day"] == [1, 2]
        np.testing.assert_allclose(columns["M"], [0.1, 0.2])
