"""Model introspection utilities."""

import numpy as np
import pytest

from repro.analysis import (
    city_embedding_neighbors,
    hsgc_user_neighbor_attention,
    mmoe_gate_summary,
    pec_history_attention,
)
from repro.core import build_odnet
from tests.conftest import TINY_MODEL_CONFIG


@pytest.fixture()
def batch(od_dataset):
    return next(od_dataset.iter_batches("test", 16, shuffle=False))


class TestPECAttention:
    def test_weights_are_masked_simplex(self, trained_odnet, batch):
        weights = pec_history_attention(trained_odnet, batch, side="d")
        assert weights.shape == (16, batch.long_mask.shape[1])
        assert np.all(weights >= 0)
        # Padded positions get zero weight; valid rows sum to one.
        assert np.all(weights[~batch.long_mask] == 0)
        has_history = batch.long_mask.any(axis=1)
        np.testing.assert_allclose(
            weights[has_history].sum(axis=1), 1.0, atol=1e-9
        )

    def test_side_validated(self, trained_odnet, batch):
        with pytest.raises(ValueError):
            pec_history_attention(trained_odnet, batch, side="x")

    def test_mode_restored(self, trained_odnet, batch):
        trained_odnet.train()
        pec_history_attention(trained_odnet, batch)
        assert trained_odnet.training


class TestGateSummary:
    def test_per_task_simplex(self, trained_odnet, batch):
        summary = mmoe_gate_summary(trained_odnet, batch)
        assert set(summary) == {"origin", "destination"}
        for usage in summary.values():
            assert usage.shape == (TINY_MODEL_CONFIG.num_experts,)
            assert usage.sum() == pytest.approx(1.0)


class TestCityNeighbors:
    def test_returns_k_sorted(self, trained_odnet):
        neighbors = city_embedding_neighbors(trained_odnet, city_id=0, k=4)
        assert len(neighbors) == 4
        sims = [s for _, s in neighbors]
        assert sims == sorted(sims, reverse=True)
        assert all(city != 0 for city, _ in neighbors)

    def test_similarity_bounded(self, trained_odnet):
        for _, similarity in city_embedding_neighbors(trained_odnet, 3, k=3):
            assert -1.0 - 1e-9 <= similarity <= 1.0 + 1e-9


class TestUserNeighborAttention:
    def test_weights_form_distribution(self, trained_odnet, od_dataset):
        # Find a user with at least one departure neighbour.
        table = trained_odnet.origin_hsgc.neighbor_table
        user = int(np.argmax(table.user_mask.sum(axis=1)))
        pairs = hsgc_user_neighbor_attention(trained_odnet, user, side="o")
        assert pairs
        total = sum(weight for _, weight in pairs)
        assert total == pytest.approx(1.0)

    def test_graphless_model_rejected(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG, "ODNET-G")
        with pytest.raises(ValueError):
            hsgc_user_neighbor_attention(model, 0)
