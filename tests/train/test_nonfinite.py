"""The trainer's finite-loss guard: skip bad batches, abort divergence."""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.obs import use_registry
from repro.train import NonFiniteLossError, TrainConfig, Trainer


class FakeLoss:
    """Stands in for a loss Tensor: item() + backward() recorded."""

    def __init__(self, value: float, backward_log: list):
        self._value = value
        self._backward_log = backward_log

    def item(self) -> float:
        return self._value

    def backward(self) -> None:
        self._backward_log.append(self._value)


class FakeModel:
    """Feeds a scripted sequence of batch-loss values to the trainer."""

    def __init__(self, losses):
        self._losses = itertools.cycle(losses)
        self.backward_log: list[float] = []
        self._param = Parameter(np.zeros(1))

    def parameters(self):
        return [self._param]

    def train(self):
        pass

    def loss(self, batch):
        return FakeLoss(next(self._losses), self.backward_log)


class TestFiniteLossGuard:
    def test_single_bad_batch_is_skipped_not_applied(self, od_dataset):
        model = FakeModel([1.0, math.nan, 2.0])
        history = Trainer(TrainConfig(epochs=1, batch_size=32, seed=0)).fit(
            model, od_dataset
        )
        assert history.nonfinite_batches >= 1
        # backward never ran for a NaN loss — the update was skipped.
        assert all(math.isfinite(v) for v in model.backward_log)
        assert all(math.isfinite(v) for v in history.epoch_losses)

    def test_inf_counts_too(self, od_dataset):
        model = FakeModel([1.0, math.inf, 1.0, -math.inf, 1.0, 1.0])
        history = Trainer(TrainConfig(epochs=1, batch_size=32, seed=0)).fit(
            model, od_dataset
        )
        assert history.nonfinite_batches >= 1

    def test_consecutive_bad_batches_abort(self, od_dataset):
        model = FakeModel([math.nan])
        with pytest.raises(NonFiniteLossError) as excinfo:
            Trainer(TrainConfig(
                epochs=1, batch_size=32, seed=0, max_nonfinite_batches=3
            )).fit(model, od_dataset)
        assert excinfo.value.consecutive == 3
        assert model.backward_log == []       # nothing was ever applied
        assert "diverged" in str(excinfo.value)

    def test_finite_batch_resets_the_consecutive_count(self, od_dataset):
        # nan, nan, ok, nan, nan, ok... never reaches 3 in a row.
        model = FakeModel([math.nan, math.nan, 1.0])
        history = Trainer(TrainConfig(
            epochs=1, batch_size=32, seed=0, max_nonfinite_batches=3
        )).fit(model, od_dataset)
        assert history.nonfinite_batches >= 2

    def test_counter_exported(self, od_dataset):
        model = FakeModel([1.0, math.nan, 1.0])
        with use_registry() as registry:
            history = Trainer(TrainConfig(epochs=1, batch_size=32, seed=0)).fit(
                model, od_dataset
            )
            assert registry.counter("train.nonfinite_batches").value == \
                history.nonfinite_batches

    def test_real_training_is_unaffected(self, trained_odnet):
        """The guard never fires on a healthy run (fixture trained fine)."""
        # trained_odnet was fit through the real Trainer in conftest;
        # reaching this assertion means no NonFiniteLossError surfaced.
        assert trained_odnet is not None
