"""Checkpoint save/load round-trips, atomicity, and corruption handling."""

import numpy as np
import pytest

from repro.core import build_odnet
from repro.train import CheckpointError, load_checkpoint, save_checkpoint
from tests.conftest import TINY_MODEL_CONFIG


class TestCheckpoint:
    def test_roundtrip_preserves_scores(self, trained_odnet, od_dataset,
                                        tmp_path):
        path = save_checkpoint(trained_odnet, tmp_path / "odnet",
                               metadata={"epochs": 2})
        assert path.suffix == ".npz"
        clone = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        meta = load_checkpoint(clone, path)
        assert meta["epochs"] == 2
        assert meta["model_name"] == "ODNET"
        batch = next(od_dataset.iter_batches("test", 8, shuffle=False))
        np.testing.assert_allclose(
            clone.score_pairs(batch), trained_odnet.score_pairs(batch)
        )

    def test_suffix_added_on_load(self, trained_odnet, od_dataset, tmp_path):
        save_checkpoint(trained_odnet, tmp_path / "model.npz")
        clone = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        load_checkpoint(clone, tmp_path / "model")  # no suffix

    def test_mismatched_architecture_rejected(self, trained_odnet, od_dataset,
                                              tmp_path):
        from dataclasses import replace

        path = save_checkpoint(trained_odnet, tmp_path / "odnet")
        other = build_odnet(
            od_dataset, replace(TINY_MODEL_CONFIG, dim=8)
        )
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)

    def test_creates_parent_directories(self, trained_odnet, tmp_path):
        path = save_checkpoint(trained_odnet, tmp_path / "a" / "b" / "model")
        assert path.exists()


class TestCheckpointErrors:
    def test_missing_file_raises_checkpoint_error(self, trained_odnet,
                                                  tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint(trained_odnet, tmp_path / "nope.npz")

    def test_truncated_archive_raises_checkpoint_error(self, trained_odnet,
                                                       od_dataset, tmp_path):
        path = save_checkpoint(trained_odnet, tmp_path / "model")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        clone = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(clone, path)

    def test_corrupt_garbage_raises_checkpoint_error(self, trained_odnet,
                                                     tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is definitely not a zip archive")
        with pytest.raises(CheckpointError, match="truncated or corrupt"):
            load_checkpoint(trained_odnet, path)

    def test_empty_file_raises_checkpoint_error(self, trained_odnet,
                                                tmp_path):
        path = tmp_path / "empty.npz"
        path.touch()
        with pytest.raises(CheckpointError):
            load_checkpoint(trained_odnet, path)


class TestAtomicity:
    def test_save_leaves_no_temp_files(self, trained_odnet, tmp_path):
        save_checkpoint(trained_odnet, tmp_path / "model")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["model.npz"]

    def test_overwrite_is_all_or_nothing(self, trained_odnet, od_dataset,
                                         tmp_path):
        """Re-saving over an existing checkpoint keeps it loadable."""
        path = save_checkpoint(trained_odnet, tmp_path / "model",
                               metadata={"generation": 1})
        path = save_checkpoint(trained_odnet, path,
                               metadata={"generation": 2})
        clone = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        meta = load_checkpoint(clone, path)
        assert meta["generation"] == 2
