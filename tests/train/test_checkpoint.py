"""Checkpoint save/load round-trips."""

import numpy as np
import pytest

from repro.core import build_odnet
from repro.train import load_checkpoint, save_checkpoint
from tests.conftest import TINY_MODEL_CONFIG


class TestCheckpoint:
    def test_roundtrip_preserves_scores(self, trained_odnet, od_dataset,
                                        tmp_path):
        path = save_checkpoint(trained_odnet, tmp_path / "odnet",
                               metadata={"epochs": 2})
        assert path.suffix == ".npz"
        clone = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        meta = load_checkpoint(clone, path)
        assert meta["epochs"] == 2
        assert meta["model_name"] == "ODNET"
        batch = next(od_dataset.iter_batches("test", 8, shuffle=False))
        np.testing.assert_allclose(
            clone.score_pairs(batch), trained_odnet.score_pairs(batch)
        )

    def test_suffix_added_on_load(self, trained_odnet, od_dataset, tmp_path):
        save_checkpoint(trained_odnet, tmp_path / "model.npz")
        clone = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        load_checkpoint(clone, tmp_path / "model")  # no suffix

    def test_mismatched_architecture_rejected(self, trained_odnet, od_dataset,
                                              tmp_path):
        from dataclasses import replace

        path = save_checkpoint(trained_odnet, tmp_path / "odnet")
        other = build_odnet(
            od_dataset, replace(TINY_MODEL_CONFIG, dim=8)
        )
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)

    def test_creates_parent_directories(self, trained_odnet, tmp_path):
        path = save_checkpoint(trained_odnet, tmp_path / "a" / "b" / "model")
        assert path.exists()
