"""Trainer and evaluation harness."""

import numpy as np
import pytest

from repro.core import build_odnet
from repro.train import (
    TrainConfig,
    Trainer,
    evaluate_auc,
    evaluate_model,
    evaluate_ranking,
    measure_inference_ms,
)
from tests.conftest import TINY_MODEL_CONFIG


class TestTrainer:
    def test_records_epoch_losses(self, od_dataset):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        history = Trainer(TrainConfig(epochs=2, seed=0)).fit(model, od_dataset)
        assert len(history.epoch_losses) == 2
        assert all(np.isfinite(history.epoch_losses))
        assert history.final_loss == history.epoch_losses[-1]

    def test_deterministic_given_seed(self, od_dataset):
        def run():
            model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
            return Trainer(TrainConfig(epochs=1, seed=7)).fit(
                model, od_dataset
            ).final_loss

        assert run() == pytest.approx(run())

    def test_verbose_prints(self, od_dataset, capsys):
        model = build_odnet(od_dataset, TINY_MODEL_CONFIG)
        Trainer(TrainConfig(epochs=1, verbose=True)).fit(model, od_dataset)
        assert "epoch 1/1" in capsys.readouterr().out


class TestEvaluate:
    def test_auc_keys_od_mode(self, trained_odnet, od_dataset):
        metrics = evaluate_auc(trained_odnet, od_dataset)
        assert set(metrics) == {"AUC-O", "AUC-D"}

    def test_auc_keys_lbsn_mode(self, lbsn_od_dataset):
        from repro.baselines import MostPop

        model = MostPop()
        model.fit(lbsn_od_dataset)
        metrics = evaluate_auc(model, lbsn_od_dataset)
        assert set(metrics) == {"AUC"}

    def test_ranking_metrics_keys(self, trained_odnet, od_dataset):
        tasks = od_dataset.ranking_tasks(num_candidates=10, max_tasks=20)
        metrics = evaluate_ranking(trained_odnet, od_dataset, tasks)
        assert set(metrics) == {"HR@1", "HR@5", "MRR@5", "HR@10", "MRR@10"}
        assert 0 <= metrics["HR@1"] <= metrics["HR@5"] <= metrics["HR@10"] <= 1

    def test_evaluate_model_merges(self, trained_odnet, od_dataset):
        tasks = od_dataset.ranking_tasks(num_candidates=10, max_tasks=10)
        metrics = evaluate_model(trained_odnet, od_dataset, tasks)
        assert "AUC-O" in metrics and "HR@5" in metrics

    def test_inference_time_positive(self, trained_odnet, od_dataset):
        tasks = od_dataset.ranking_tasks(num_candidates=10, max_tasks=5)
        ms = measure_inference_ms(trained_odnet, od_dataset, tasks, repeats=1)
        assert ms > 0

    def test_inference_time_requires_tasks(self, trained_odnet, od_dataset):
        with pytest.raises(ValueError):
            measure_inference_ms(trained_odnet, od_dataset, [])
