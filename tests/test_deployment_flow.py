"""The Figure 9 deployment flow, end to end.

Offline: generate data -> train -> checkpoint (MaxCompute/PAI side).
Online: load dataset + checkpoint into a fresh process-like context ->
serve requests through TPP/RTFS/recall/RSS -> explain results.
"""

import numpy as np

from repro.core import build_odnet
from repro.data import ODDataset, load_dataset, save_dataset
from repro.serving import FlightRecommender, RecommendationExplainer
from repro.train import load_checkpoint, save_checkpoint
from tests.conftest import TINY_MODEL_CONFIG


class TestDeploymentFlow:
    def test_offline_train_online_serve(self, fliggy_dataset, od_dataset,
                                        trained_odnet, tmp_path):
        # --- offline side: persist dataset and model --------------------
        dataset_path = save_dataset(fliggy_dataset, tmp_path / "dataset")
        model_path = save_checkpoint(trained_odnet, tmp_path / "model",
                                     metadata={"stage": "offline"})

        # --- online side: fresh objects, loaded state --------------------
        served_dataset = ODDataset(load_dataset(dataset_path),
                                   max_long=10, max_short=6)
        served_model = build_odnet(served_dataset, TINY_MODEL_CONFIG)
        meta = load_checkpoint(served_model, model_path)
        assert meta["stage"] == "offline"

        recommender = FlightRecommender(served_model, served_dataset)
        explainer = RecommendationExplainer(
            served_dataset.source.world, served_dataset.route_popularity
        )

        point = served_dataset.source.test_points[0]
        response = recommender.recommend(
            user_id=point.history.user_id, day=point.day, k=5
        )
        assert response.flights

        # Served scores must match the offline model exactly.
        offline_recommender = FlightRecommender(trained_odnet, od_dataset)
        offline = offline_recommender.recommend(
            user_id=point.history.user_id, day=point.day, k=5
        )
        assert [f.pair for f in response.flights] == [
            f.pair for f in offline.flights
        ]
        np.testing.assert_allclose(
            [f.score for f in response.flights],
            [f.score for f in offline.flights],
        )

        # Every served flight carries an explanation.
        for flight in response.flights:
            explanation = explainer.explain(point.history, flight.pair)
            assert explanation.reasons
