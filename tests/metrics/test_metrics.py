"""AUC, HR@k, MRR@k (Eqs. 12-13) and CTR (Eq. 14), with property tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    auc,
    ctr,
    evaluate_rankings,
    hit_rate_at_k,
    mrr_at_k,
    rank_of_true,
)


class TestAUC:
    def test_perfect_separation(self):
        assert auc(np.array([0.9, 0.8, 0.2, 0.1]),
                   np.array([1, 1, 0, 0])) == 1.0

    def test_inverted_separation(self):
        assert auc(np.array([0.1, 0.9]), np.array([1, 0])) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(20_000)
        labels = rng.random(20_000) > 0.5
        assert abs(auc(scores, labels) - 0.5) < 0.02

    def test_ties_get_half_credit(self):
        assert auc(np.array([0.5, 0.5]), np.array([1, 0])) == 0.5

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            auc(np.array([0.1, 0.2]), np.array([1, 1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            auc(np.zeros(3), np.zeros(2))

    @given(seed=st.integers(0, 5000), n=st.integers(4, 60))
    @settings(max_examples=40, deadline=None)
    def test_property_monotone_transform_invariant(self, seed, n):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=n)
        labels = rng.random(n) > 0.5
        if labels.all() or not labels.any():
            labels[0] = ~labels[0]
        a1 = auc(scores, labels)
        a2 = auc(np.exp(scores * 2), labels)  # strictly monotone transform
        assert a1 == pytest.approx(a2)

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=40, deadline=None)
    def test_property_label_flip_complements(self, seed):
        rng = np.random.default_rng(seed)
        scores = rng.normal(size=30)
        labels = rng.random(30) > 0.5
        if labels.all() or not labels.any():
            labels[0] = ~labels[0]
        assert auc(scores, labels) == pytest.approx(1.0 - auc(-scores, labels))


class TestRankOfTrue:
    def test_top_rank(self):
        assert rank_of_true(np.array([0.9, 0.1, 0.5]), 0) == 1

    def test_bottom_rank(self):
        assert rank_of_true(np.array([0.9, 0.1, 0.5]), 1) == 3

    def test_ties_are_pessimistic(self):
        assert rank_of_true(np.array([0.5, 0.5, 0.5]), 0) == 3


class TestHitAndMRR:
    def test_hr_at_k(self):
        ranks = np.array([1, 3, 7, 20])
        assert hit_rate_at_k(ranks, 1) == 0.25
        assert hit_rate_at_k(ranks, 5) == 0.5
        assert hit_rate_at_k(ranks, 10) == 0.75

    def test_mrr_at_k(self):
        ranks = np.array([1, 2, 11])
        assert mrr_at_k(ranks, 10) == pytest.approx((1.0 + 0.5 + 0.0) / 3)

    def test_mrr_equals_hr_at_1(self):
        """The paper notes MRR@k == HR@k when k == 1."""
        ranks = np.array([1, 4, 1, 2])
        assert mrr_at_k(ranks, 1) == hit_rate_at_k(ranks, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hit_rate_at_k(np.array([]), 5)
        with pytest.raises(ValueError):
            mrr_at_k(np.array([]), 5)

    def test_evaluate_rankings_keys(self):
        metrics = evaluate_rankings(np.array([1, 2, 3]), ks=(1, 5, 10))
        assert set(metrics) == {"HR@1", "HR@5", "MRR@5", "HR@10", "MRR@10"}

    @given(
        seed=st.integers(0, 1000),
        k_small=st.integers(1, 5),
        k_big=st.integers(6, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_monotone_in_k(self, seed, k_small, k_big):
        ranks = np.random.default_rng(seed).integers(1, 25, size=30)
        assert hit_rate_at_k(ranks, k_small) <= hit_rate_at_k(ranks, k_big)
        assert mrr_at_k(ranks, k_small) <= mrr_at_k(ranks, k_big)


class TestCTR:
    def test_scalar(self):
        assert ctr(5, 100) == 0.05

    def test_zero_impressions(self):
        assert ctr(0, 0) == 0.0

    def test_vector(self):
        out = ctr(np.array([1, 2]), np.array([10, 0]))
        np.testing.assert_allclose(out, [0.1, 0.0])
