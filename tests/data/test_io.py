"""Dataset persistence round-trips."""

import numpy as np
import pytest

from repro.data import ODDataset
from repro.data.io import load_dataset, save_dataset


@pytest.fixture(scope="module")
def roundtripped(fliggy_dataset, tmp_path_factory):
    path = save_dataset(
        fliggy_dataset, tmp_path_factory.mktemp("io") / "fliggy"
    )
    return load_dataset(path)


class TestRoundTrip:
    def test_world_geometry(self, fliggy_dataset, roundtripped):
        np.testing.assert_allclose(
            roundtripped.world.coordinates, fliggy_dataset.world.coordinates
        )
        np.testing.assert_allclose(
            roundtripped.world.prices, fliggy_dataset.world.prices
        )
        np.testing.assert_allclose(
            roundtripped.world.popularity, fliggy_dataset.world.popularity
        )

    def test_city_semantics(self, fliggy_dataset, roundtripped):
        for a, b in zip(fliggy_dataset.world.cities, roundtripped.world.cities):
            assert a.patterns == b.patterns
            assert a.name == b.name
            assert a.region == b.region

    def test_profiles(self, fliggy_dataset, roundtripped):
        assert roundtripped.profiles == fliggy_dataset.profiles

    def test_samples(self, fliggy_dataset, roundtripped):
        assert roundtripped.train_samples == fliggy_dataset.train_samples
        assert roundtripped.test_samples == fliggy_dataset.test_samples

    def test_bookings(self, fliggy_dataset, roundtripped):
        assert roundtripped.bookings_by_user == fliggy_dataset.bookings_by_user

    def test_decision_points(self, fliggy_dataset, roundtripped):
        assert len(roundtripped.train_points) == len(fliggy_dataset.train_points)
        for a, b in zip(fliggy_dataset.test_points, roundtripped.test_points):
            assert a.target == b.target
            assert a.day == b.day
            assert a.history.current_city == b.history.current_city
            assert a.history.bookings == b.history.bookings
            assert a.history.clicks == b.history.clicks

    def test_config_preserved(self, fliggy_dataset, roundtripped):
        assert roundtripped.config == fliggy_dataset.config

    def test_loaded_dataset_is_trainable(self, roundtripped):
        """The loaded dataset supports the full model pipeline."""
        from repro.core import build_odnet
        from repro.train import TrainConfig
        from tests.conftest import TINY_MODEL_CONFIG

        dataset = ODDataset(roundtripped, max_long=10, max_short=6)
        model = build_odnet(dataset, TINY_MODEL_CONFIG)
        seconds = model.fit(dataset, TrainConfig(epochs=1, seed=0))
        assert seconds > 0

    def test_statistics_identical(self, fliggy_dataset, roundtripped):
        assert roundtripped.statistics() == fliggy_dataset.statistics()


class TestErrors:
    def test_unsupported_version(self, fliggy_dataset, tmp_path):
        import json

        path = save_dataset(fliggy_dataset, tmp_path / "data")
        with np.load(path) as archive:
            payload = {k: archive[k] for k in archive.files}
        header = json.loads(bytes(payload["header"].tobytes()).decode())
        header["version"] = 999
        payload["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_suffix_normalisation(self, fliggy_dataset, tmp_path):
        path = save_dataset(fliggy_dataset, tmp_path / "data.npz")
        load_dataset(tmp_path / "data")  # works without suffix
        assert path.name == "data.npz"
