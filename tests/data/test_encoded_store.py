"""The struct-of-arrays encoded-point store and its serving-time LRU bound.

``register_point`` used to grow the encode cache forever — an unbounded
memory leak under live traffic with unique ``(user, day)`` keys.  The
store now bounds *ad-hoc* (serving-time) rows with an LRU; offline
train/test rows are pinned and exempt because the training iterator and
parameter server address them by row.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ODDataset
from repro.data.synthetic import DecisionPoint
from repro.obs.registry import MetricsRegistry, set_registry


CAP = 4


@pytest.fixture()
def capped_dataset(fliggy_dataset):
    return ODDataset(fliggy_dataset, max_long=10, max_short=6,
                     max_cached_points=CAP)


def _adhoc_point(dataset, index: int) -> DecisionPoint:
    """A decision point whose (user, day) key is not in the offline set."""
    base = dataset.source.test_points[index % len(dataset.source.test_points)]
    return DecisionPoint(
        history=base.history, target=base.target, day=10_000 + index
    )


class TestCapValidation:
    def test_zero_cap_rejected(self, fliggy_dataset):
        with pytest.raises(ValueError, match="max_adhoc"):
            ODDataset(fliggy_dataset, max_cached_points=0)

    def test_unbounded_cache_allowed(self, fliggy_dataset):
        dataset = ODDataset(fliggy_dataset, max_long=10, max_short=6,
                            max_cached_points=None)
        for i in range(8):
            dataset.register_point(_adhoc_point(dataset, i))
        assert dataset.encoded_evictions == 0


class TestLRUBound:
    def test_store_stops_growing_at_cap(self, capped_dataset):
        pinned = capped_dataset.encoded_points
        for i in range(3 * CAP):
            capped_dataset.register_point(_adhoc_point(capped_dataset, i))
        assert capped_dataset.encoded_points == pinned + CAP
        assert capped_dataset.encoded_evictions == 2 * CAP

    def test_least_recently_used_is_evicted(self, capped_dataset):
        store = capped_dataset._store
        points = [_adhoc_point(capped_dataset, i) for i in range(CAP + 1)]
        for point in points[:CAP]:
            capped_dataset.register_point(point)
        # Touch the oldest so the second-oldest becomes the LRU victim.
        assert store.row(points[0].key) is not None
        capped_dataset.register_point(points[CAP])
        assert store.row(points[0].key) is not None
        assert store.row(points[1].key) is None
        assert capped_dataset.encoded_evictions == 1

    def test_evicted_row_is_reused_not_regrown(self, capped_dataset):
        store = capped_dataset._store
        for i in range(CAP):
            capped_dataset.register_point(_adhoc_point(capped_dataset, i))
        capacity_at_cap = store._capacity
        for i in range(CAP, 4 * CAP):
            capped_dataset.register_point(_adhoc_point(capped_dataset, i))
        assert store._capacity == capacity_at_cap

    def test_re_register_after_eviction_round_trips(self, capped_dataset):
        point = _adhoc_point(capped_dataset, 0)
        first_row = capped_dataset.register_point(point)
        reference = capped_dataset._store.long_origins[first_row].copy()
        for i in range(1, 2 * CAP):
            capped_dataset.register_point(_adhoc_point(capped_dataset, i))
        assert capped_dataset._store.row(point.key) is None
        new_row = capped_dataset.register_point(point)
        np.testing.assert_array_equal(
            capped_dataset._store.long_origins[new_row], reference
        )


class TestPinnedRows:
    def test_offline_points_survive_adhoc_floods(self, capped_dataset):
        keys = [p.key for p in capped_dataset.source.train_points[:5]]
        rows_before = [capped_dataset._store.row(key) for key in keys]
        for i in range(5 * CAP):
            capped_dataset.register_point(_adhoc_point(capped_dataset, i))
        assert [capped_dataset._store.row(key) for key in keys] == rows_before

    def test_training_batches_work_after_flood(self, capped_dataset):
        for i in range(5 * CAP):
            capped_dataset.register_point(_adhoc_point(capped_dataset, i))
        batch = next(iter(capped_dataset.iter_batches(
            "train", batch_size=16, shuffle=False
        )))
        assert len(batch) == 16


class TestServingAfterEviction:
    def test_batch_for_requests_re_encodes_transparently(self, capped_dataset):
        from repro.data.schema import ODPair

        point = _adhoc_point(capped_dataset, 0)
        candidates = [ODPair(0, 1), ODPair(1, 2)]
        before = capped_dataset.batch_for_requests([(point, candidates)])
        for i in range(1, 2 * CAP):
            capped_dataset.register_point(_adhoc_point(capped_dataset, i))
        assert capped_dataset._store.row(point.key) is None
        after = capped_dataset.batch_for_requests([(point, candidates)])
        np.testing.assert_array_equal(before.long_origins, after.long_origins)
        np.testing.assert_array_equal(before.xst_o, after.xst_o)
        np.testing.assert_array_equal(
            before.pair_features, after.pair_features
        )


class TestObsCounter:
    def test_evictions_reported_to_registry(self, capped_dataset):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            for i in range(2 * CAP):
                capped_dataset.register_point(_adhoc_point(capped_dataset, i))
        finally:
            set_registry(previous)
        assert (
            registry.counter("dataset.encoded_evictions").value
            == capped_dataset.encoded_evictions
            == CAP
        )
