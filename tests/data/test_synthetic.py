"""The Fliggy behavioural simulator: Table I structure and planted signals."""

import dataclasses
from collections import Counter

import numpy as np
import pytest

from repro.data import DegenerateWorldError, FliggyConfig, generate_fliggy_dataset
from repro.data.schema import ODPair, SampleKind
from repro.data.synthetic import (
    _generate_clicks,
    _sample_negative_city,
    _sample_profile,
)
from repro.data.world import WorldConfig, generate_city_world
from repro.graph import EdgeType


class TestSampleStructure:
    def test_table1_ratio(self, fliggy_dataset):
        """One positive : 4 partial negatives : 2 negatives, per Table I."""
        stats = fliggy_dataset.statistics()
        assert stats["training_partial_neg"] == 4 * stats["training_pos"]
        assert stats["training_neg"] == 2 * stats["training_pos"]
        assert stats["testing_partial_neg"] == 4 * stats["testing_pos"]

    def test_sample_kinds(self, fliggy_dataset):
        kinds = Counter(s.kind for s in fliggy_dataset.train_samples)
        assert set(kinds) == set(SampleKind.ALL)

    def test_negative_city_differs_from_positive(self, fliggy_dataset):
        for point in fliggy_dataset.train_points[:50]:
            samples = [
                s for s in fliggy_dataset.train_samples
                if s.user_id == point.history.user_id and s.day == point.day
            ]
            for s in samples:
                if not s.label_o:
                    assert s.origin != point.target.origin
                if not s.label_d:
                    assert s.destination != point.target.destination

    def test_one_test_point_per_eligible_user(self, fliggy_dataset):
        users = [p.history.user_id for p in fliggy_dataset.test_points]
        assert len(users) == len(set(users))

    def test_train_points_capped_per_user(self, fliggy_dataset):
        counts = Counter(p.history.user_id for p in fliggy_dataset.train_points)
        cap = fliggy_dataset.config.train_points_per_user
        assert max(counts.values()) <= cap


class TestNoLeakage:
    def test_history_strictly_before_decision_day(self, fliggy_dataset):
        for point in fliggy_dataset.train_points + fliggy_dataset.test_points:
            for booking in point.history.bookings:
                assert booking.day < point.day
            for click in point.history.clicks:
                assert click.day < point.day

    def test_train_points_before_test_point(self, fliggy_dataset):
        test_day = {
            p.history.user_id: p.day for p in fliggy_dataset.test_points
        }
        for point in fliggy_dataset.train_points:
            if point.history.user_id in test_day:
                assert point.day < test_day[point.history.user_id]

    def test_hsg_excludes_test_bookings(self, fliggy_dataset):
        graph = fliggy_dataset.build_hsg()
        events = fliggy_dataset.training_od_events()
        assert graph.num_edges(EdgeType.DEPARTURE) == len(events)
        test_day = {
            p.history.user_id: p.day for p in fliggy_dataset.test_points
        }
        total_bookings = sum(
            len(b) for b in fliggy_dataset.bookings_by_user.values()
        )
        # Strictly fewer events than bookings: test bookings excluded.
        assert len(events) < total_bookings
        for user, day in test_day.items():
            visible = [
                b for b in fliggy_dataset.bookings_by_user[user] if b.day < day
            ]
            assert len(visible) < len(fliggy_dataset.bookings_by_user[user])


class TestPlantedStructure:
    """The generator must contain the paper's two challenges."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_fliggy_dataset(
            FliggyConfig(num_users=250, world=WorldConfig(num_cities=40),
                         seed=11)
        )

    def test_origin_exploration_present(self, dataset):
        """A meaningful share of bookings departs from a non-current city."""
        explored = 0
        total = 0
        for point in dataset.test_points:
            total += 1
            if point.target.origin != point.history.current_city:
                explored += 1
        assert explored / total > 0.15

    def test_destination_novelty_present(self, dataset):
        """Many next destinations were never visited before (exploration)."""
        novel = 0
        total = 0
        for point in dataset.test_points:
            total += 1
            if point.target.destination not in set(
                point.history.destination_sequence
            ):
                novel += 1
        assert novel / total > 0.3

    def test_return_trips_present(self, dataset):
        """Reversed-pair bookings (return tickets) occur."""
        returns = 0
        total = 0
        for bookings in dataset.bookings_by_user.values():
            for prev, nxt in zip(bookings, bookings[1:]):
                total += 1
                if (nxt.origin, nxt.destination) == (
                    prev.destination, prev.origin
                ):
                    returns += 1
        assert returns / total > 0.15

    def test_clicks_are_intent_correlated(self, dataset):
        """Clicked destinations share a pattern with the true one more often
        than chance."""
        pattern_hits = 0
        total = 0
        for point in dataset.test_points:
            true_patterns = dataset.world.cities[
                point.target.destination
            ].patterns
            for click in point.history.clicks:
                total += 1
                if dataset.world.cities[click.destination].patterns & true_patterns:
                    pattern_hits += 1
        assert pattern_hits / total > 0.5

    def test_bookings_sorted_by_day(self, dataset):
        for bookings in dataset.bookings_by_user.values():
            days = [b.day for b in bookings]
            assert days == sorted(days)

    def test_prices_match_world(self, dataset):
        for bookings in list(dataset.bookings_by_user.values())[:20]:
            for b in bookings:
                assert b.price == pytest.approx(
                    dataset.world.prices[b.origin, b.destination]
                )

    def test_reproducible(self):
        config = FliggyConfig(num_users=50, world=WorldConfig(num_cities=20),
                              seed=99)
        a = generate_fliggy_dataset(config)
        b = generate_fliggy_dataset(config)
        assert [s for s in a.train_samples[:50]] == [
            s for s in b.train_samples[:50]
        ]


class TestClickDayClamp:
    """Clicks precede their booking by up to click_window_days; for
    bookings in the first week of history the raw offset would land
    before day zero and must clamp to 0."""

    @pytest.fixture(scope="class")
    def world(self):
        return generate_city_world(
            WorldConfig(num_cities=20), np.random.default_rng(3)
        )

    def test_early_booking_clicks_clamp_to_zero(self, world):
        config = FliggyConfig(num_users=1, world=WorldConfig(num_cities=20),
                              seed=3)
        rng = np.random.default_rng(3)
        profile = _sample_profile(0, world, config, rng)
        # Day 1 guarantees every raw click day (1 - offset, offset >= 1)
        # is <= 0, so the clamp is exercised on every click.
        clicks = _generate_clicks(
            profile, world, ODPair(0, 1), day=1, config=config, rng=rng
        )
        assert clicks
        assert all(c.day == 0 for c in clicks)

    def test_all_dataset_click_days_non_negative(self, fliggy_dataset):
        for point in (
            fliggy_dataset.train_points + fliggy_dataset.test_points
        ):
            for click in point.history.clicks:
                assert click.day >= 0


class TestDegenerateNegativeSampling:
    """_sample_negative_city must terminate on worlds where the
    rejection loop used to spin forever, without changing the draws on
    healthy worlds (pinned datasets)."""

    @pytest.fixture(scope="class")
    def world(self):
        return generate_city_world(
            WorldConfig(num_cities=10), np.random.default_rng(5)
        )

    def test_one_city_world_raises_typed_error(self, world):
        tiny = dataclasses.replace(world, cities=world.cities[:1])
        with pytest.raises(DegenerateWorldError, match="negative city"):
            _sample_negative_city(tiny, 0, np.random.default_rng(0))
        # The typed error is still a ValueError for generic handlers.
        assert issubclass(DegenerateWorldError, ValueError)

    def test_all_mass_on_excluded_city_renormalises(self, world):
        popularity = np.zeros(world.num_cities)
        popularity[4] = 1.0
        spiked = dataclasses.replace(world, popularity=popularity)
        rng = np.random.default_rng(1)
        drawn = {
            _sample_negative_city(spiked, 4, rng) for _ in range(200)
        }
        assert 4 not in drawn
        # Uniform over the complement: every other city is reachable.
        assert drawn == set(range(world.num_cities)) - {4}

    def test_healthy_world_draws_unchanged(self, world):
        """The guarded path must consume exactly the draws of the bare
        rejection loop, or every pinned dataset silently changes."""
        exclude = 2
        for seed in range(5):
            reference_rng = np.random.default_rng(seed)
            while True:
                expected = int(reference_rng.choice(
                    world.num_cities, p=world.popularity
                ))
                if expected != exclude:
                    break
            rng = np.random.default_rng(seed)
            assert _sample_negative_city(world, exclude, rng) == expected
            # Both consumed the same number of draws.
            assert rng.integers(1 << 30) == reference_rng.integers(1 << 30)


class TestAccessors:
    def test_point_for_lookup(self, fliggy_dataset):
        point = fliggy_dataset.test_points[0]
        assert fliggy_dataset.point_for(
            point.history.user_id, point.day
        ) is point

    def test_num_users_cities(self, fliggy_dataset):
        assert fliggy_dataset.num_users == 120
        assert fliggy_dataset.num_cities == 30
        assert len(fliggy_dataset.cities) == 30
