"""The Fliggy behavioural simulator: Table I structure and planted signals."""

from collections import Counter

import numpy as np
import pytest

from repro.data import FliggyConfig, generate_fliggy_dataset
from repro.data.schema import SampleKind
from repro.data.world import WorldConfig
from repro.graph import EdgeType


class TestSampleStructure:
    def test_table1_ratio(self, fliggy_dataset):
        """One positive : 4 partial negatives : 2 negatives, per Table I."""
        stats = fliggy_dataset.statistics()
        assert stats["training_partial_neg"] == 4 * stats["training_pos"]
        assert stats["training_neg"] == 2 * stats["training_pos"]
        assert stats["testing_partial_neg"] == 4 * stats["testing_pos"]

    def test_sample_kinds(self, fliggy_dataset):
        kinds = Counter(s.kind for s in fliggy_dataset.train_samples)
        assert set(kinds) == set(SampleKind.ALL)

    def test_negative_city_differs_from_positive(self, fliggy_dataset):
        for point in fliggy_dataset.train_points[:50]:
            samples = [
                s for s in fliggy_dataset.train_samples
                if s.user_id == point.history.user_id and s.day == point.day
            ]
            for s in samples:
                if not s.label_o:
                    assert s.origin != point.target.origin
                if not s.label_d:
                    assert s.destination != point.target.destination

    def test_one_test_point_per_eligible_user(self, fliggy_dataset):
        users = [p.history.user_id for p in fliggy_dataset.test_points]
        assert len(users) == len(set(users))

    def test_train_points_capped_per_user(self, fliggy_dataset):
        counts = Counter(p.history.user_id for p in fliggy_dataset.train_points)
        cap = fliggy_dataset.config.train_points_per_user
        assert max(counts.values()) <= cap


class TestNoLeakage:
    def test_history_strictly_before_decision_day(self, fliggy_dataset):
        for point in fliggy_dataset.train_points + fliggy_dataset.test_points:
            for booking in point.history.bookings:
                assert booking.day < point.day
            for click in point.history.clicks:
                assert click.day < point.day

    def test_train_points_before_test_point(self, fliggy_dataset):
        test_day = {
            p.history.user_id: p.day for p in fliggy_dataset.test_points
        }
        for point in fliggy_dataset.train_points:
            if point.history.user_id in test_day:
                assert point.day < test_day[point.history.user_id]

    def test_hsg_excludes_test_bookings(self, fliggy_dataset):
        graph = fliggy_dataset.build_hsg()
        events = fliggy_dataset.training_od_events()
        assert graph.num_edges(EdgeType.DEPARTURE) == len(events)
        test_day = {
            p.history.user_id: p.day for p in fliggy_dataset.test_points
        }
        total_bookings = sum(
            len(b) for b in fliggy_dataset.bookings_by_user.values()
        )
        # Strictly fewer events than bookings: test bookings excluded.
        assert len(events) < total_bookings
        for user, day in test_day.items():
            visible = [
                b for b in fliggy_dataset.bookings_by_user[user] if b.day < day
            ]
            assert len(visible) < len(fliggy_dataset.bookings_by_user[user])


class TestPlantedStructure:
    """The generator must contain the paper's two challenges."""

    @pytest.fixture(scope="class")
    def dataset(self):
        return generate_fliggy_dataset(
            FliggyConfig(num_users=250, world=WorldConfig(num_cities=40),
                         seed=11)
        )

    def test_origin_exploration_present(self, dataset):
        """A meaningful share of bookings departs from a non-current city."""
        explored = 0
        total = 0
        for point in dataset.test_points:
            total += 1
            if point.target.origin != point.history.current_city:
                explored += 1
        assert explored / total > 0.15

    def test_destination_novelty_present(self, dataset):
        """Many next destinations were never visited before (exploration)."""
        novel = 0
        total = 0
        for point in dataset.test_points:
            total += 1
            if point.target.destination not in set(
                point.history.destination_sequence
            ):
                novel += 1
        assert novel / total > 0.3

    def test_return_trips_present(self, dataset):
        """Reversed-pair bookings (return tickets) occur."""
        returns = 0
        total = 0
        for bookings in dataset.bookings_by_user.values():
            for prev, nxt in zip(bookings, bookings[1:]):
                total += 1
                if (nxt.origin, nxt.destination) == (
                    prev.destination, prev.origin
                ):
                    returns += 1
        assert returns / total > 0.15

    def test_clicks_are_intent_correlated(self, dataset):
        """Clicked destinations share a pattern with the true one more often
        than chance."""
        pattern_hits = 0
        total = 0
        for point in dataset.test_points:
            true_patterns = dataset.world.cities[
                point.target.destination
            ].patterns
            for click in point.history.clicks:
                total += 1
                if dataset.world.cities[click.destination].patterns & true_patterns:
                    pattern_hits += 1
        assert pattern_hits / total > 0.5

    def test_bookings_sorted_by_day(self, dataset):
        for bookings in dataset.bookings_by_user.values():
            days = [b.day for b in bookings]
            assert days == sorted(days)

    def test_prices_match_world(self, dataset):
        for bookings in list(dataset.bookings_by_user.values())[:20]:
            for b in bookings:
                assert b.price == pytest.approx(
                    dataset.world.prices[b.origin, b.destination]
                )

    def test_reproducible(self):
        config = FliggyConfig(num_users=50, world=WorldConfig(num_cities=20),
                              seed=99)
        a = generate_fliggy_dataset(config)
        b = generate_fliggy_dataset(config)
        assert [s for s in a.train_samples[:50]] == [
            s for s in b.train_samples[:50]
        ]


class TestAccessors:
    def test_point_for_lookup(self, fliggy_dataset):
        point = fliggy_dataset.test_points[0]
        assert fliggy_dataset.point_for(
            point.history.user_id, point.day
        ) is point

    def test_num_users_cities(self, fliggy_dataset):
        assert fliggy_dataset.num_users == 120
        assert fliggy_dataset.num_cities == 30
        assert len(fliggy_dataset.cities) == 30
