"""Streaming generation: determinism, order independence, batch agreement."""

import numpy as np
import pytest

from repro.data import FliggyConfig, FliggyGenerator, generate_fliggy_dataset
from repro.data.world import WorldConfig


CONFIG = FliggyConfig(
    num_users=40, world=WorldConfig(num_cities=25),
    train_points_per_user=2, seed=13,
)


@pytest.fixture(scope="module")
def generator():
    return FliggyGenerator(CONFIG)


class TestConstruction:
    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            FliggyGenerator(FliggyConfig(num_users=5, seed=-1))

    def test_len_is_num_users(self, generator):
        assert len(generator) == CONFIG.num_users

    def test_user_id_out_of_range(self, generator):
        with pytest.raises(IndexError):
            generator.user_stream(CONFIG.num_users)
        with pytest.raises(IndexError):
            generator.user_stream(-1)


class TestWorldAgreement:
    def test_world_matches_batch_mode(self, generator):
        """Streaming and batch modes must agree on the shared world —
        same root RNG, same cities, prices and popularity."""
        dataset = generate_fliggy_dataset(CONFIG)
        np.testing.assert_array_equal(
            generator.world.popularity, dataset.world.popularity
        )
        np.testing.assert_array_equal(
            generator.world.prices, dataset.world.prices
        )
        assert [c.name for c in generator.world.cities] == [
            c.name for c in dataset.world.cities
        ]


class TestDeterminism:
    def test_same_config_same_streams(self, generator):
        other = FliggyGenerator(CONFIG)
        for user_id in (0, 7, 39):
            a = generator.user_stream(user_id)
            b = other.user_stream(user_id)
            assert a.bookings == b.bookings
            assert a.train_samples == b.train_samples
            assert a.test_samples == b.test_samples

    def test_order_independence(self, generator):
        """user_stream(k) is identical whether derived first or after
        every other user — each user has its own SeedSequence."""
        forward = FliggyGenerator(CONFIG)
        in_order = [forward.user_stream(i) for i in range(10)]
        backward = FliggyGenerator(CONFIG)
        reversed_order = [backward.user_stream(i) for i in range(9, -1, -1)]
        for stream in in_order:
            twin = reversed_order[9 - stream.user_id]
            assert twin.user_id == stream.user_id
            assert twin.bookings == stream.bookings
            assert twin.train_samples == stream.train_samples

    def test_repeated_derivation_identical(self, generator):
        a = generator.user_stream(3)
        b = generator.user_stream(3)
        assert a.bookings == b.bookings
        assert a.train_samples == b.train_samples


class TestIteration:
    def test_iterates_every_user_once(self, generator):
        ids = [stream.user_id for stream in generator]
        assert ids == list(range(CONFIG.num_users))

    def test_stream_users_slice(self, generator):
        ids = [s.user_id for s in generator.stream_users(5, 9)]
        assert ids == [5, 6, 7, 8]

    def test_streams_retain_nothing(self, generator):
        """The generator caches no per-user state: successive iterations
        re-derive streams rather than returning shared objects."""
        first = next(iter(generator))
        second = next(iter(generator))
        assert first is not second
        assert first.bookings == second.bookings


class TestStructure:
    def test_table1_mix_per_user(self, generator):
        """Per decision point: 1 positive, 4 partial negatives, 2 negatives
        (Table I), same as the batch expansion."""
        for stream in generator.stream_users(0, 15):
            points = len(stream.train_points)
            samples = stream.train_samples
            positives = [s for s in samples if s.label_o and s.label_d]
            partials = [s for s in samples if s.label_o != s.label_d]
            negatives = [
                s for s in samples if not s.label_o and not s.label_d
            ]
            assert len(positives) == points
            assert len(partials) == 4 * points
            assert len(negatives) == 2 * points

    def test_train_points_capped(self, generator):
        for stream in generator:
            assert (
                len(stream.train_points) <= CONFIG.train_points_per_user
            )

    def test_history_strictly_before_decision_day(self, generator):
        for stream in generator.stream_users(0, 10):
            for point in stream.decision_points():
                for booking in point.history.bookings:
                    assert booking.day < point.day
                for click in point.history.clicks:
                    assert click.day < point.day

    def test_click_days_non_negative(self, generator):
        """The click-day clamp: early bookings must not generate clicks
        before day zero."""
        for stream in generator:
            for point in stream.decision_points():
                for click in point.history.clicks:
                    assert click.day >= 0

    def test_bookings_sorted_by_day(self, generator):
        for stream in generator.stream_users(0, 10):
            days = [b.day for b in stream.bookings]
            assert days == sorted(days)

    def test_test_point_is_last_eligible(self, generator):
        for stream in generator.stream_users(0, 10):
            if stream.test_point is None:
                continue
            for point in stream.train_points:
                assert point.day < stream.test_point.day
