"""Synthetic city world: geography, semantics, prices."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.schema import CityPattern
from repro.data.world import WorldConfig, generate_city_world


@pytest.fixture(scope="module")
def world():
    return generate_city_world(WorldConfig(num_cities=40), np.random.default_rng(0))


class TestGeneration:
    def test_minimum_cities(self):
        with pytest.raises(ValueError):
            generate_city_world(WorldConfig(num_cities=2), np.random.default_rng(0))

    def test_counts_and_shapes(self, world):
        assert world.num_cities == 40
        assert world.coordinates.shape == (40, 2)
        assert world.distance_km.shape == (40, 40)
        assert world.prices.shape == (40, 40)

    def test_coordinates_in_bounding_box(self, world):
        config = WorldConfig()
        lon, lat = world.coordinates[:, 0], world.coordinates[:, 1]
        assert lon.min() >= config.lon_range[0]
        assert lon.max() <= config.lon_range[1]
        assert lat.min() >= config.lat_range[0]
        assert lat.max() <= config.lat_range[1]

    def test_popularity_is_distribution(self, world):
        assert world.popularity.min() > 0
        assert world.popularity.sum() == pytest.approx(1.0)

    def test_every_city_has_a_pattern(self, world):
        for city in world.cities:
            assert city.patterns, f"{city.name} has no pattern"

    def test_seaside_assigned_by_coast(self, world):
        config = WorldConfig()
        for city in world.cities:
            if city.lon >= config.coast_lon:
                assert CityPattern.SEASIDE in city.patterns

    def test_pattern_members_consistent(self, world):
        for pattern, members in world.pattern_members.items():
            for city_id in members:
                assert world.cities[city_id].has_pattern(pattern)

    def test_reproducible(self):
        a = generate_city_world(WorldConfig(num_cities=10), np.random.default_rng(5))
        b = generate_city_world(WorldConfig(num_cities=10), np.random.default_rng(5))
        np.testing.assert_allclose(a.prices, b.prices)


class TestPrices:
    def test_diagonal_infinite(self, world):
        assert np.all(np.isinf(np.diag(world.prices)))

    def test_off_diagonal_positive_finite(self, world):
        off = world.prices[~np.eye(40, dtype=bool)]
        assert np.all(np.isfinite(off))
        assert np.all(off > 0)

    def test_price_grows_with_distance_on_average(self, world):
        off = ~np.eye(40, dtype=bool)
        corr = np.corrcoef(world.distance_km[off], world.prices[off])[0, 1]
        assert corr > 0.8

    def test_hub_routes_cheaper_per_km(self, world):
        # Compare per-km price between top-popularity pairs and bottom ones.
        order = np.argsort(-world.popularity)
        hubs, tails = order[:5], order[-5:]
        def per_km(group):
            vals = []
            for i in group:
                for j in group:
                    if i != j and world.distance_km[i, j] > 100:
                        vals.append(world.prices[i, j] / world.distance_km[i, j])
            return np.mean(vals)
        assert per_km(hubs) < per_km(tails)


class TestQueries:
    def test_nearby_cities_sorted_and_bounded(self, world):
        nearby = world.nearby_cities(0, radius_km=800)
        distances = world.distance_km[0, nearby]
        assert np.all(np.diff(distances) >= 0)
        assert np.all(distances <= 800)
        assert 0 not in nearby

    def test_cities_with_unknown_pattern_empty(self, world):
        assert world.cities_with_pattern("volcano").size == 0

    def test_price_accessor(self, world):
        assert world.price(0, 1) == pytest.approx(world.prices[0, 1])

    @given(radius=st.floats(50, 2000))
    @settings(max_examples=20, deadline=None)
    def test_property_nearby_within_radius(self, world, radius):
        nearby = world.nearby_cities(3, radius_km=radius)
        assert np.all(world.distance_km[3, nearby] <= radius)
