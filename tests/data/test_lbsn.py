"""Synthetic LBSN datasets (Foursquare / Gowalla stand-ins)."""

import numpy as np
import pytest

from repro.data import foursquare_config, generate_lbsn_dataset, gowalla_config


class TestConfigs:
    def test_presets_differ(self):
        fs, gw = foursquare_config(), gowalla_config()
        assert gw.num_pois > fs.num_pois
        assert gw.name == "gowalla"

    def test_overrides(self):
        cfg = foursquare_config(num_users=10)
        assert cfg.num_users == 10
        assert cfg.name == "foursquare"


class TestGeneration:
    def test_transitions_are_od_events(self, lbsn_dataset):
        """Each booking's origin equals the previous check-in location."""
        for bookings in list(lbsn_dataset.bookings_by_user.values())[:20]:
            for prev, nxt in zip(bookings, bookings[1:]):
                assert nxt.origin == prev.destination

    def test_current_city_is_previous_location(self, lbsn_dataset):
        for point in lbsn_dataset.test_points[:30]:
            assert point.history.current_city == point.target.origin

    def test_samples_are_d_only(self, lbsn_dataset):
        """Negatives only vary the destination (origin is known)."""
        for sample in lbsn_dataset.train_samples[:200]:
            assert sample.label_o == 1

    def test_negative_count_per_positive(self, lbsn_dataset):
        positives = sum(1 for s in lbsn_dataset.train_samples if s.label_d)
        negatives = sum(1 for s in lbsn_dataset.train_samples if not s.label_d)
        assert negatives == 4 * positives

    def test_history_strictly_before_target(self, lbsn_dataset):
        for point in lbsn_dataset.train_points + lbsn_dataset.test_points:
            for booking in point.history.bookings:
                assert booking.day < point.day

    def test_pois_have_one_category(self, lbsn_dataset):
        for city in lbsn_dataset.world.cities:
            assert len(city.patterns) == 1
            (pattern,) = city.patterns
            assert pattern.startswith("category_")

    def test_users_concentrate_on_few_categories(self, lbsn_dataset):
        """Personal category preference shows up in the check-in mix: a
        user's most visited category exceeds the uniform share."""
        world = lbsn_dataset.world
        concentrations = []
        for bookings in lbsn_dataset.bookings_by_user.values():
            if len(bookings) < 8:
                continue
            categories = [world.cities[b.destination].region for b in bookings]
            counts = np.bincount(categories, minlength=6)
            concentrations.append(counts.max() / counts.sum())
        assert np.mean(concentrations) > 1.5 / 6

    def test_reproducible(self):
        cfg = foursquare_config(num_users=20, num_pois=30)
        a = generate_lbsn_dataset(cfg)
        b = generate_lbsn_dataset(cfg)
        assert a.train_samples[:20] == b.train_samples[:20]

    def test_mobility_is_distance_biased(self, lbsn_dataset):
        """Consecutive check-ins are nearer than random POI pairs."""
        world = lbsn_dataset.world
        hop = []
        for bookings in lbsn_dataset.bookings_by_user.values():
            for b in bookings:
                hop.append(world.distance_km[b.origin, b.destination])
        rng = np.random.default_rng(0)
        n = world.num_cities
        random_pairs = [
            world.distance_km[i, j]
            for i, j in zip(rng.integers(0, n, 2000), rng.integers(0, n, 2000))
            if i != j
        ]
        assert np.mean(hop) < np.mean(random_pairs)
