"""Property-based tests over generator configurations.

Hypothesis drives the Fliggy and LBSN generators across random
configurations and asserts the invariants every downstream consumer
relies on: Table I ratios, id validity, chronology, and no label leakage.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import (
    FliggyConfig,
    ODDataset,
    foursquare_config,
    generate_fliggy_dataset,
    generate_lbsn_dataset,
)
from repro.data.world import WorldConfig


@st.composite
def fliggy_configs(draw):
    return FliggyConfig(
        num_users=draw(st.integers(20, 50)),
        world=WorldConfig(num_cities=draw(st.integers(8, 20))),
        min_bookings=draw(st.integers(4, 6)),
        mean_bookings=draw(st.floats(6.0, 10.0)),
        train_points_per_user=draw(st.integers(1, 2)),
        partial_negatives=draw(st.integers(1, 3)),
        full_negatives=draw(st.integers(1, 3)),
        seed=draw(st.integers(0, 10_000)),
    )


class TestFliggyProperties:
    @given(config=fliggy_configs())
    @settings(max_examples=15, deadline=None)
    def test_invariants(self, config):
        dataset = generate_fliggy_dataset(config)
        n = dataset.num_cities

        # Every id is in range and origins differ from destinations at
        # positive samples? (Negatives may coincide with O by chance but
        # must stay in range.)
        for sample in dataset.train_samples + dataset.test_samples:
            assert 0 <= sample.origin < n
            assert 0 <= sample.destination < n

        # Table I ratios hold for any negative-count configuration.
        stats = dataset.statistics()
        if stats["training_pos"]:
            assert stats["training_partial_neg"] == (
                2 * config.partial_negatives * stats["training_pos"]
            )
            assert stats["training_neg"] == (
                config.full_negatives * stats["training_pos"]
            )

        # Chronology and leakage.
        for point in dataset.train_points + dataset.test_points:
            for booking in point.history.bookings:
                assert booking.day < point.day

        # Each user contributes at most the configured train points.
        from collections import Counter

        per_user = Counter(p.history.user_id for p in dataset.train_points)
        if per_user:
            assert max(per_user.values()) <= config.train_points_per_user

    @given(config=fliggy_configs())
    @settings(max_examples=8, deadline=None)
    def test_dataset_view_consistency(self, config):
        dataset = ODDataset(generate_fliggy_dataset(config), max_long=6,
                            max_short=4)
        batches = list(dataset.iter_batches("train", 64, shuffle=False))
        total = sum(len(b) for b in batches)
        assert total == len(dataset.samples("train"))
        for batch in batches:
            assert batch.long_origins.max() < dataset.num_cities
            assert batch.candidate_origin.max() < dataset.num_cities
            assert np.isfinite(batch.xst_o).all()
            assert np.isfinite(batch.pair_features).all()


class TestLbsnProperties:
    @given(
        num_users=st.integers(10, 40),
        num_pois=st.integers(8, 30),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=10, deadline=None)
    def test_invariants(self, num_users, num_pois, seed):
        dataset = generate_lbsn_dataset(
            foursquare_config(num_users=num_users, num_pois=num_pois,
                              seed=seed)
        )
        for bookings in dataset.bookings_by_user.values():
            for prev, nxt in zip(bookings, bookings[1:]):
                assert nxt.origin == prev.destination
            for booking in bookings:
                assert 0 <= booking.origin < num_pois
                assert 0 <= booking.destination < num_pois
        for sample in dataset.train_samples:
            assert sample.label_o == 1  # D-only negatives
