"""Temporal statistics x_st: visibility, windows, same-period counts."""

import numpy as np
import pytest

from repro.data.schema import BookingEvent
from repro.data.temporal import XST_DIM, TemporalFeatureExtractor


def _booking(user, o, d, day):
    return BookingEvent(user_id=user, origin=o, destination=d, day=day,
                        price=100.0)


@pytest.fixture()
def extractor():
    bookings = {
        0: [
            _booking(0, 1, 2, 10),
            _booking(0, 1, 3, 40),
            _booking(0, 1, 2, 370),   # ~1 year after day 10
            _booking(0, 5, 2, 395),
        ],
        1: [
            _booking(1, 1, 2, 50),
        ],
    }
    return TemporalFeatureExtractor(bookings)


class TestVisibility:
    def test_future_events_invisible(self, extractor):
        # At day 10 nothing has happened yet for user 0 / city 2 as D.
        features = extractor.features(0, 2, 10, "d")
        np.testing.assert_allclose(features, np.zeros(XST_DIM))

    def test_role_validation(self, extractor):
        with pytest.raises(ValueError):
            extractor.features(0, 2, 100, "x")

    def test_unknown_user_gives_user_zeros(self, extractor):
        # Day 60: user 1's day-50 trip to city 2 is in the global window.
        features = extractor.features(42, 2, 60, "d")
        assert features[0] == 0  # last month user count
        assert features[2] == 0  # total user count
        assert features[3] > 0   # global stats still visible


class TestCounts:
    def test_last_month_window(self, extractor):
        # Day 41: booking at day 40 is within the last 30 days; day 10 not.
        features = extractor.features(0, 1, 41, "o")
        assert features[0] == pytest.approx(np.log1p(1))

    def test_total_user_visits(self, extractor):
        features = extractor.features(0, 1, 400, "o")
        assert features[2] == pytest.approx(np.log1p(3))

    def test_same_period_of_history(self, extractor):
        # Day 372: the anniversary window covers day ~7 (372-365) so the
        # day-10 trip to city 2 counts as same-period.
        features = extractor.features(0, 2, 372, "d")
        assert features[1] == pytest.approx(np.log1p(1))

    def test_same_period_excludes_far_days(self, extractor):
        # Day 430 -> anniversary 65; day-10 and day-40 both outside +-15.
        features = extractor.features(0, 2, 430, "d")
        assert features[1] == 0.0

    def test_recency_decay(self, extractor):
        day_after = extractor.features(0, 2, 396, "d")[5]
        month_after = extractor.features(0, 2, 425, "d")[5]
        assert day_after > month_after > 0

    def test_roles_tracked_separately(self, extractor):
        # City 2 is a destination for user 0, never an origin.
        assert extractor.features(0, 2, 400, "o")[2] == 0.0
        assert extractor.features(0, 2, 400, "d")[2] > 0.0

    def test_global_counts_span_users(self, extractor):
        # Origin city 1 was used by user 0 (twice before day 60) and user 1.
        features = extractor.features(1, 1, 60, "o")
        assert features[3] > 0

    def test_batch_matches_single(self, extractor):
        users = np.array([0, 0])
        cities = np.array([2, 1])
        days = np.array([400, 400])
        batch = extractor.features_batch(users, cities, days, "d")
        np.testing.assert_allclose(
            batch[0], extractor.features(0, 2, 400, "d")
        )
        np.testing.assert_allclose(
            batch[1], extractor.features(0, 1, 400, "d")
        )
