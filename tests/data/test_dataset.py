"""ODDataset batching, aux/pair features, and ranking-task construction."""

import numpy as np
import pytest

from repro.data import ODDataset, ODPair
from repro.data.dataset import AUX_DIM, FULL_XST_DIM, PAIR_DIM
from repro.data.temporal import XST_DIM


class TestBatching:
    def test_batch_shapes(self, od_dataset):
        batch = next(od_dataset.iter_batches("train", batch_size=32))
        assert len(batch) == 32
        assert batch.long_origins.shape == (32, 10)
        assert batch.short_origins.shape == (32, 6)
        assert batch.xst_o.shape == (32, FULL_XST_DIM)
        assert batch.pair_features.shape == (32, PAIR_DIM)

    def test_batches_cover_all_samples(self, od_dataset):
        total = sum(
            len(b) for b in od_dataset.iter_batches("train", batch_size=128)
        )
        assert total == len(od_dataset.samples("train"))

    def test_shuffle_changes_order(self, od_dataset):
        b1 = next(od_dataset.iter_batches("train", 64,
                                          rng=np.random.default_rng(1)))
        b2 = next(od_dataset.iter_batches("train", 64,
                                          rng=np.random.default_rng(2)))
        assert not np.array_equal(b1.candidate_origin, b2.candidate_origin)

    def test_no_shuffle_is_deterministic(self, od_dataset):
        b1 = next(od_dataset.iter_batches("train", 64, shuffle=False))
        b2 = next(od_dataset.iter_batches("train", 64, shuffle=False))
        np.testing.assert_array_equal(b1.candidate_origin, b2.candidate_origin)

    def test_unknown_split_rejected(self, od_dataset):
        with pytest.raises(ValueError):
            list(od_dataset.iter_batches("validation"))

    def test_masks_align_with_history_length(self, od_dataset):
        batch = next(od_dataset.iter_batches("test", 64, shuffle=False))
        for i in range(len(batch)):
            point = od_dataset.source.point_for(
                int(batch.user_ids[i]), int(batch.day[i])
            )
            expected = min(len(point.history.bookings), od_dataset.max_long)
            assert batch.long_mask[i].sum() == expected

    def test_sequences_keep_most_recent(self, od_dataset):
        batch = next(od_dataset.iter_batches("test", 64, shuffle=False))
        for i in range(len(batch)):
            point = od_dataset.source.point_for(
                int(batch.user_ids[i]), int(batch.day[i])
            )
            bookings = point.history.bookings[-od_dataset.max_long:]
            valid = int(batch.long_mask[i].sum())
            assert batch.long_origins[i, :valid].tolist() == [
                b.origin for b in bookings
            ]


class TestAuxFeatures:
    def test_is_current_flag(self, od_dataset):
        batch = next(od_dataset.iter_batches("train", 256, shuffle=False))
        is_current = batch.xst_o[:, XST_DIM]
        expected = (batch.candidate_origin == batch.current_city).astype(float)
        np.testing.assert_allclose(is_current, expected)

    def test_long_match_counts(self, od_dataset):
        batch = next(od_dataset.iter_batches("train", 256, shuffle=False))
        for i in range(20):
            matches = (
                (batch.long_destinations[i] == batch.candidate_destination[i])
                & batch.long_mask[i]
            ).sum()
            assert batch.xst_d[i, XST_DIM + 1] == pytest.approx(
                np.log1p(matches)
            )

    def test_distance_feature(self, od_dataset):
        batch = next(od_dataset.iter_batches("train", 64, shuffle=False))
        expected = np.log1p(
            od_dataset.distance_km[batch.current_city, batch.candidate_origin]
        )
        np.testing.assert_allclose(batch.xst_o[:, XST_DIM + 4], expected)

    def test_aux_dim_consistency(self):
        assert FULL_XST_DIM == XST_DIM + AUX_DIM


class TestPairFeatures:
    def test_reverse_of_last_flag(self, od_dataset):
        point = od_dataset.source.test_points[0]
        last = point.history.bookings[-1]
        reverse = ODPair(last.destination, last.origin)
        batch = od_dataset.batch_for_candidates(point, [reverse, point.target])
        assert batch.pair_features[0, 5] == 1.0

    def test_route_popularity_normalised(self, od_dataset):
        pop = od_dataset.route_popularity
        assert pop.max() == pytest.approx(1.0)
        assert pop.min() >= 0.0

    def test_pair_distance(self, od_dataset):
        batch = next(od_dataset.iter_batches("train", 32, shuffle=False))
        expected = np.log1p(od_dataset.distance_km[
            batch.candidate_origin, batch.candidate_destination
        ])
        np.testing.assert_allclose(batch.pair_features[:, 0], expected)


class TestRankingTasks:
    def test_true_pair_present_once(self, od_dataset):
        tasks = od_dataset.ranking_tasks(
            num_candidates=12, rng=np.random.default_rng(0), max_tasks=30
        )
        for task in tasks:
            assert task.candidates[task.true_index] == task.point.target
            assert task.candidates.count(task.point.target) == 1

    def test_candidates_unique(self, od_dataset):
        tasks = od_dataset.ranking_tasks(
            num_candidates=12, rng=np.random.default_rng(0), max_tasks=30
        )
        for task in tasks:
            assert len(set(task.candidates)) == len(task.candidates)

    def test_max_tasks_subsamples(self, od_dataset):
        tasks = od_dataset.ranking_tasks(num_candidates=8, max_tasks=10)
        assert len(tasks) == 10

    def test_lbsn_mode_fixes_origin(self, lbsn_od_dataset):
        tasks = lbsn_od_dataset.ranking_tasks(
            num_candidates=10, rng=np.random.default_rng(0), max_tasks=20
        )
        for task in tasks:
            origins = {pair.origin for pair in task.candidates}
            assert origins == {task.point.target.origin}

    def test_batch_for_candidates_labels(self, od_dataset):
        point = od_dataset.source.test_points[0]
        distractor = ODPair(
            (point.target.origin + 1) % od_dataset.num_cities,
            (point.target.destination + 1) % od_dataset.num_cities,
        )
        batch = od_dataset.batch_for_candidates(point, [point.target, distractor])
        assert batch.label_o.tolist() == [1.0, 0.0]
        assert batch.label_d.tolist() == [1.0, 0.0]

    def test_register_point_enables_adhoc_scoring(self, od_dataset):
        from repro.data.synthetic import DecisionPoint
        from repro.data.schema import UserHistory

        source_point = od_dataset.source.test_points[0]
        adhoc = DecisionPoint(
            history=UserHistory(
                user_id=source_point.history.user_id,
                current_city=source_point.history.current_city,
                bookings=list(source_point.history.bookings[:2]),
                clicks=[],
            ),
            target=source_point.target,
            day=source_point.day + 12345,
        )
        batch = od_dataset.batch_for_candidates(adhoc, [source_point.target])
        assert len(batch) == 1
