"""Domain schema: ODPair, Sample kinds, UserHistory accessors."""

from repro.data import ODPair, Sample, UserHistory
from repro.data.schema import (
    BookingEvent,
    CityPattern,
    ClickEvent,
    SampleKind,
)


class TestODPair:
    def test_reversed(self):
        pair = ODPair(3, 7)
        assert pair.reversed == ODPair(7, 3)
        assert pair.reversed.reversed == pair

    def test_tuple_semantics(self):
        origin, destination = ODPair(1, 2)
        assert (origin, destination) == (1, 2)
        assert ODPair(1, 2) == (1, 2)


class TestSampleKind:
    def test_positive(self):
        assert Sample(0, 1, 2, 1, 1, 10).kind == SampleKind.POSITIVE

    def test_partial_negative_d(self):
        assert Sample(0, 1, 2, 1, 0, 10).kind == SampleKind.PARTIAL_NEG_D

    def test_partial_negative_o(self):
        assert Sample(0, 1, 2, 0, 1, 10).kind == SampleKind.PARTIAL_NEG_O

    def test_negative(self):
        assert Sample(0, 1, 2, 0, 0, 10).kind == SampleKind.NEGATIVE

    def test_all_kinds_enumerated(self):
        assert len(SampleKind.ALL) == 4


class TestUserHistory:
    def test_sequence_accessors(self):
        history = UserHistory(
            user_id=0,
            current_city=5,
            bookings=[
                BookingEvent(0, 1, 2, 10, 100.0),
                BookingEvent(0, 3, 4, 20, 150.0),
            ],
            clicks=[ClickEvent(0, 5, 6, 25)],
        )
        assert history.origin_sequence == [1, 3]
        assert history.destination_sequence == [2, 4]
        assert history.click_origin_sequence == [5]
        assert history.click_destination_sequence == [6]


class TestCityPattern:
    def test_four_patterns(self):
        assert len(CityPattern.ALL) == 4
        assert CityPattern.SEASIDE in CityPattern.ALL
