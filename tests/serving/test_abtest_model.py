"""The cascade click model: CTR must be monotone in ranking quality."""

import numpy as np
import pytest

from repro.serving import ABTestConfig, ABTestSimulator


class _OracleRanker:
    """Scores the true pair 1.0, everything else by noise level."""

    def __init__(self, dataset, noise: float, seed: int = 0):
        self._dataset = dataset
        self._noise = noise
        self._rng = np.random.default_rng(seed)
        self._truths = {
            point.key: point.target for point in dataset.source.test_points
        }

    def score_pairs(self, batch):
        scores = self._rng.random(len(batch)) * self._noise
        for i in range(len(batch)):
            key = (int(batch.user_ids[i]), int(batch.day[i]))
            truth = self._truths.get(key)
            if truth is not None and (
                batch.candidate_origin[i],
                batch.candidate_destination[i],
            ) == tuple(truth):
                scores[i] = 1.0 + scores[i]
        return scores


class TestCascadeMonotonicity:
    @pytest.fixture(scope="class")
    def tasks(self, od_dataset):
        return od_dataset.ranking_tasks(
            num_candidates=20, rng=np.random.default_rng(5), max_tasks=80
        )

    def test_better_ranker_higher_ctr(self, od_dataset, tasks):
        config = ABTestConfig(days=4, users_per_day_per_method=20, seed=0)
        simulator = ABTestSimulator(od_dataset, config)
        result = simulator.run(
            {
                "oracle": _OracleRanker(od_dataset, noise=0.01),
                "noisy": _OracleRanker(od_dataset, noise=5.0, seed=1),
            },
            tasks,
        )
        assert result.mean_ctr("oracle") > result.mean_ctr("noisy")

    def test_ctr_deterministic_given_seed(self, od_dataset, tasks):
        config = ABTestConfig(days=2, users_per_day_per_method=10, seed=3)

        def run():
            return ABTestSimulator(od_dataset, config).run(
                {"oracle": _OracleRanker(od_dataset, noise=0.5)}, tasks
            ).mean_ctr("oracle")

        assert run() == pytest.approx(run())

    def test_relevance_tier_ordering(self, od_dataset, tasks):
        """exact > same destination > same pattern >= background."""
        from repro.data.schema import ODPair

        simulator = ABTestSimulator(od_dataset, ABTestConfig())
        task = tasks[0]
        true = task.point.target
        exact = simulator._relevance(task, true)
        same_dest = simulator._relevance(
            task,
            ODPair((true.origin + 1) % od_dataset.num_cities,
                   true.destination),
        )
        assert exact > same_dest > 0
        config = simulator.config
        assert config.pattern_relevance >= config.background_relevance
