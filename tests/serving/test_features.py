"""Real-Time Features Service."""

import pytest

from repro.data.schema import BookingEvent, ClickEvent
from repro.serving import RealTimeFeatureService


@pytest.fixture()
def service():
    bookings = {
        0: [
            BookingEvent(0, 1, 2, day=10, price=100.0),
            BookingEvent(0, 2, 1, day=20, price=100.0),
            BookingEvent(0, 1, 3, day=50, price=200.0),
        ],
        1: [],
    }
    return RealTimeFeatureService(bookings)


class TestQueries:
    def test_bookings_before_excludes_same_day(self, service):
        assert len(service.bookings_before(0, 50)) == 2

    def test_resident_city_most_frequent_origin(self, service):
        assert service.resident_city(0) == 1

    def test_resident_city_unknown_user(self, service):
        assert service.resident_city(99) is None
        assert service.resident_city(1) is None

    def test_current_city_is_last_destination(self, service):
        assert service.current_city(0, 60) == 3
        assert service.current_city(0, 15) == 2

    def test_current_city_falls_back_to_resident(self, service):
        assert service.current_city(0, 5) == 1

    def test_user_history_snapshot(self, service):
        history = service.user_history(0, 55)
        assert history.current_city == 3
        assert len(history.bookings) == 3
        assert history.clicks == []

    def test_user_history_unknown_user_raises(self, service):
        with pytest.raises(KeyError):
            service.user_history(42, 10)


class TestStreaming:
    def test_record_click_visible_in_window(self, service):
        service.record_click(ClickEvent(0, 1, 4, day=58))
        history = service.user_history(0, 60)
        assert len(history.clicks) == 1
        # Outside the 7-day window it disappears.
        assert service.clicks_before(0, 70) == []

    def test_record_booking_keeps_order(self, service):
        service.record_booking(BookingEvent(0, 3, 1, day=30, price=50.0))
        days = [b.day for b in service.bookings_before(0, 100)]
        assert days == sorted(days)

    def test_record_booking_out_of_order_arrivals(self, service):
        # Streaming events arrive late and out of order; the timeline must
        # stay day-sorted after every single insert (bisect.insort path).
        arrivals = [45, 5, 60, 15, 5, 55, 1]
        for day in arrivals:
            service.record_booking(BookingEvent(0, 2, 3, day=day, price=10.0))
            days = [b.day for b in service.bookings_before(0, 1000)]
            assert days == sorted(days)
        final = [b.day for b in service.bookings_before(0, 1000)]
        assert final == sorted([10, 20, 50] + arrivals)

    def test_record_click_out_of_order_arrivals(self, service):
        # Clicks stream in late and out of order too; recall iterates the
        # click timeline newest-first as an intent signal, so an appended
        # old click would silently outrank fresh intent.  The timeline
        # must stay day-sorted after every single insert.
        arrivals = [58, 54, 59, 55, 54, 57]
        for day in arrivals:
            service.record_click(ClickEvent(0, 1, 4, day=day))
            days = [c.day for c in service.clicks_before(0, 60)]
            assert days == sorted(days)
        assert [c.day for c in service.clicks_before(0, 60)] == sorted(
            arrivals
        )

    def test_late_old_click_does_not_mask_fresh_intent(self, service):
        # A fresh click on destination 9, then a *late-arriving* older
        # click on destination 5: newest-first consumers must still see
        # destination 9 first.
        service.record_click(ClickEvent(0, 1, 9, day=59))
        service.record_click(ClickEvent(0, 1, 5, day=54))
        clicks = service.clicks_before(0, 60)
        assert clicks[-1].destination == 9
        assert [c.day for c in clicks] == [54, 59]

    def test_record_booking_new_user(self, service):
        service.record_booking(BookingEvent(7, 1, 2, day=3, price=10.0))
        assert [b.day for b in service.bookings_before(7, 10)] == [3]
        assert 7 in service.known_users()

    def test_known_users(self, service):
        assert service.known_users() == [0, 1]


class TestBoundedHistories:
    """Per-user timelines are capped: oldest evicted, counters exposed."""

    def test_caps_must_be_positive(self):
        with pytest.raises(ValueError, match="caps must be >= 1"):
            RealTimeFeatureService({}, max_bookings_per_user=0)
        with pytest.raises(ValueError, match="caps must be >= 1"):
            RealTimeFeatureService({}, max_clicks_per_user=0)

    def test_streaming_bookings_evict_oldest(self):
        service = RealTimeFeatureService({0: []}, max_bookings_per_user=3)
        for day in range(1, 6):
            service.record_booking(
                BookingEvent(0, 1, 2, day=day, price=10.0)
            )
        # Newest three retained, two oldest evicted and counted.
        assert [b.day for b in service.bookings_before(0, 100)] == [3, 4, 5]
        assert service.evicted_bookings == 2
        assert service.evicted_clicks == 0

    def test_streaming_clicks_evict_oldest(self):
        service = RealTimeFeatureService({0: []}, max_clicks_per_user=2)
        for day in (54, 55, 56, 57):
            service.record_click(ClickEvent(0, 1, 4, day=day))
        assert [c.day for c in service.clicks_before(0, 60)] == [56, 57]
        assert service.evicted_clicks == 2

    def test_seeded_histories_are_capped_too(self):
        bookings = {
            0: [
                BookingEvent(0, 1, 2, day=day, price=10.0)
                for day in range(10)
            ],
        }
        service = RealTimeFeatureService(bookings, max_bookings_per_user=4)
        assert [b.day for b in service.bookings_before(0, 100)] == [
            6, 7, 8, 9,
        ]
        assert service.evicted_bookings == 6

    def test_eviction_is_per_user(self):
        service = RealTimeFeatureService(
            {0: [], 1: []}, max_bookings_per_user=2
        )
        for day in range(1, 5):
            service.record_booking(
                BookingEvent(0, 1, 2, day=day, price=10.0)
            )
        service.record_booking(BookingEvent(1, 2, 1, day=1, price=10.0))
        # User 1's single booking is untouched by user 0's overflow.
        assert len(service.bookings_before(0, 100)) == 2
        assert len(service.bookings_before(1, 100)) == 1

    def test_queries_over_retained_window_unchanged(self):
        events = [
            BookingEvent(0, 1, 2, day=10, price=100.0),
            BookingEvent(0, 2, 1, day=20, price=100.0),
            BookingEvent(0, 2, 3, day=30, price=100.0),
            BookingEvent(0, 3, 4, day=40, price=100.0),
        ]
        bounded = RealTimeFeatureService(
            {0: events}, max_bookings_per_user=2
        )
        recent_only = RealTimeFeatureService({0: events[2:]})
        # Point-in-time queries that only touch the retained window are
        # bit-for-bit what an unbounded store over the same window gives.
        assert bounded.current_city(0, 50) == recent_only.current_city(0, 50)
        assert (
            bounded.user_history(0, 50).bookings
            == recent_only.user_history(0, 50).bookings
        )
