"""Serving latency measurement."""

import pytest

from repro.serving import FlightRecommender, measure_serving_latency


class TestLatency:
    def test_requires_users(self, trained_odnet, od_dataset):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        with pytest.raises(ValueError):
            measure_serving_latency(recommender, [], day=700)

    def test_report_consistency(self, trained_odnet, od_dataset):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        users = [p.history.user_id for p in od_dataset.source.test_points[:8]]
        report = measure_serving_latency(recommender, users, day=725, k=5)
        assert report.count == len(users)
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.p99_ms <= report.max_ms
        assert report.mean_ms > 0
        text = report.format()
        assert "p95" in text and "requests=8" in text
