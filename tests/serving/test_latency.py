"""Serving latency measurement."""

import pytest

from repro.serving import FlightRecommender, measure_serving_latency
from repro.serving.latency import LatencyReport
from repro.obs.registry import Histogram


class TestLatency:
    def test_requires_users(self, trained_odnet, od_dataset):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        with pytest.raises(ValueError):
            measure_serving_latency(recommender, [], day=700)

    def test_report_consistency(self, trained_odnet, od_dataset):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        users = [p.history.user_id for p in od_dataset.source.test_points[:8]]
        report = measure_serving_latency(recommender, users, day=725, k=5)
        # Warmup iterations are excluded from the measured samples.
        assert report.count == len(users) - 2
        assert 0 < report.p50_ms <= report.p95_ms <= report.p99_ms
        assert report.p99_ms <= report.max_ms
        assert report.mean_ms > 0
        text = report.format()
        assert "p95" in text and "requests=6" in text

    def test_warmup_excluded_but_clamped(self, trained_odnet, od_dataset):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        users = [p.history.user_id for p in od_dataset.source.test_points[:3]]
        report = measure_serving_latency(
            recommender, users, day=725, k=5, warmup=10
        )
        # warmup >= len(users) still measures at least one request.
        assert report.count == 1

    def test_report_from_histogram_matches_obs_percentiles(self):
        histogram = Histogram("lat")
        for value in (1.0, 2.0, 3.0, 4.0, 100.0):
            histogram.observe(value)
        report = LatencyReport.from_histogram(histogram)
        assert report.count == 5
        assert report.p50_ms == histogram.percentile(50)
        assert report.p99_ms == histogram.percentile(99)
        assert report.max_ms == 100.0
