"""Candidate recall strategies (Section VI-B)."""

import numpy as np
import pytest

from repro.serving import CandidateRecall, RecallConfig


@pytest.fixture(scope="module")
def recall(od_dataset):
    return CandidateRecall(
        od_dataset.source.world, od_dataset.route_popularity
    )


@pytest.fixture(scope="module")
def history(od_dataset):
    return od_dataset.source.test_points[0].history


class TestOrigins:
    def test_current_city_first(self, recall, history):
        origins = recall.candidate_origins(history)
        assert origins[0] == history.current_city

    def test_includes_resident_city(self, recall, history):
        from collections import Counter

        origins = recall.candidate_origins(history)
        resident = Counter(
            b.origin for b in history.bookings
        ).most_common(1)[0][0]
        assert resident in origins

    def test_no_duplicates(self, recall, history):
        origins = recall.candidate_origins(history)
        assert len(origins) == len(set(origins))

    def test_adjacent_cities_within_radius(self, recall, history, od_dataset):
        config = recall.config
        origins = recall.candidate_origins(history)
        adjacent = od_dataset.source.world.nearby_cities(
            history.current_city, config.adjacent_radius_km
        )[: config.max_adjacent]
        for city in adjacent:
            assert int(city) in origins


class TestDestinations:
    def test_includes_historical_destinations(self, recall, history):
        destinations = recall.candidate_destinations(history)
        top_hist = history.destination_sequence[-1]
        assert top_hist in destinations or len(destinations) >= 8

    def test_includes_clicked_destinations(self, recall, history):
        destinations = recall.candidate_destinations(history)
        for click in history.clicks[-3:]:
            assert click.destination in destinations

    def test_no_duplicates(self, recall, history):
        destinations = recall.candidate_destinations(history)
        assert len(destinations) == len(set(destinations))


class TestPairs:
    def test_pairs_valid_and_capped(self, recall, history):
        pairs = recall.candidate_pairs(history)
        assert 0 < len(pairs) <= recall.config.max_pairs
        assert all(p.origin != p.destination for p in pairs)
        assert len(set(pairs)) == len(pairs)

    def test_return_pair_included(self, recall, history):
        pairs = recall.candidate_pairs(history)
        last = history.bookings[-1]
        if last.destination != last.origin:
            assert (last.destination, last.origin) in [
                (p.origin, p.destination) for p in pairs
            ]

    def test_clicked_pairs_lead(self, recall, history):
        pairs = recall.candidate_pairs(history)
        click = history.clicks[-1]
        if click.origin != click.destination:
            assert pairs[0] == (click.origin, click.destination)

    def test_small_cap_respected(self, od_dataset, history):
        tight = CandidateRecall(
            od_dataset.source.world,
            od_dataset.route_popularity,
            RecallConfig(max_pairs=10),
        )
        assert len(tight.candidate_pairs(history)) <= 10

    def test_recall_usually_contains_truth(self, od_dataset, recall):
        """The recall stage should surface the true next OD pair for a
        decent share of test events (otherwise ranking cannot fix it)."""
        hits = 0
        points = od_dataset.source.test_points[:60]
        for point in points:
            pairs = set(recall.candidate_pairs(point.history))
            if point.target in pairs:
                hits += 1
        assert hits / len(points) > 0.5


class TestPopularPairs:
    """Regression: the diagonal must be masked BEFORE capping to ``limit``.

    The old code sliced the top-``limit`` flat indices first and dropped
    self-pairs afterwards, so a popularity matrix with hot diagonal
    entries silently returned fewer than ``limit`` routes.
    """

    @pytest.mark.parametrize("limit", [1, 5, 20, 100])
    def test_exactly_limit_pairs(self, recall, limit):
        pairs = recall.popular_pairs(limit)
        assert len(pairs) == limit
        assert all(p.origin != p.destination for p in pairs)
        assert len(set(pairs)) == limit

    def test_diagonal_heavy_matrix_still_fills_limit(self, od_dataset):
        """Even when every diagonal entry dominates every real route."""
        world = od_dataset.source.world
        n = od_dataset.num_cities
        popularity = np.arange(n * n, dtype=np.float64).reshape(n, n)
        np.fill_diagonal(popularity, 1e12)
        recall = CandidateRecall(world, popularity)
        limit = 2 * n  # old behaviour: top-2n flat slots were all-diagonal
                       # plus the next n, yielding < 2n pairs
        pairs = recall.popular_pairs(limit)
        assert len(pairs) == limit
        assert all(p.origin != p.destination for p in pairs)

    def test_orders_by_popularity(self, od_dataset):
        world = od_dataset.source.world
        n = od_dataset.num_cities
        popularity = np.zeros((n, n))
        popularity[0, 1] = 5.0
        popularity[2, 3] = 9.0
        popularity[1, 0] = 7.0
        recall = CandidateRecall(world, popularity)
        top = recall.popular_pairs(3)
        assert [(p.origin, p.destination) for p in top] == [
            (2, 3), (1, 0), (0, 1)
        ]

    def test_limit_larger_than_offdiagonal(self, od_dataset):
        world = od_dataset.source.world
        n = od_dataset.num_cities
        recall = CandidateRecall(world, np.ones((n, n)))
        pairs = recall.popular_pairs(n * n * 2)
        assert len(pairs) == n * (n - 1)  # every off-diagonal pair, once
