"""RankingService, FlightRecommender facade, and the A/B simulator."""

import numpy as np
import pytest

from repro.data.schema import ODPair
from repro.serving import (
    ABTestConfig,
    ABTestSimulator,
    FlightRecommender,
    RankingService,
)


@pytest.fixture(scope="module")
def recommender(trained_odnet, od_dataset):
    return FlightRecommender(trained_odnet, od_dataset)


class TestRankingService:
    def test_empty_candidates(self, trained_odnet, od_dataset):
        service = RankingService(trained_odnet, od_dataset)
        point = od_dataset.source.test_points[0]
        assert service.rank(point.history, [], day=point.day) == []

    def test_scores_descending_and_k_respected(self, trained_odnet, od_dataset):
        service = RankingService(trained_odnet, od_dataset)
        point = od_dataset.source.test_points[0]
        n = od_dataset.num_cities
        candidates = [
            ODPair(i % n, (i + 3) % n) for i in range(12)
        ]
        candidates = [p for p in candidates if p.origin != p.destination]
        ranked = service.rank(point.history, candidates, day=point.day, k=5)
        assert len(ranked) == 5
        scores = [r.score for r in ranked]
        assert scores == sorted(scores, reverse=True)


class TestFlightRecommender:
    def test_end_to_end_response(self, recommender, od_dataset):
        user = od_dataset.source.test_points[0].history.user_id
        response = recommender.recommend(user_id=user, day=720, k=5)
        assert len(response) <= 5
        assert response.user_id == user
        for flight in response.flights:
            assert flight.pair.origin != flight.pair.destination
        assert len(set(response.pairs)) == len(response.pairs)

    def test_unknown_user_degrades_to_cold_start(self, recommender):
        """A user with no behavioural data no longer raises KeyError —
        they get a degraded, popularity-anchored recommendation."""
        response = recommender.recommend(user_id=10**9, day=720)
        assert len(response) > 0
        assert response.degraded
        assert [str(e) for e in response.fallbacks] == ["features:cold_start"]

    def test_ranked_quality_beats_reversed(self, recommender, trained_odnet,
                                           od_dataset):
        """The top recommendation must score at least the bottom one."""
        user = od_dataset.source.test_points[1].history.user_id
        response = recommender.recommend(user_id=user, day=720, k=10)
        if len(response) >= 2:
            assert response.flights[0].score >= response.flights[-1].score


class TestABTest:
    def test_result_structure(self, trained_odnet, od_dataset):
        from repro.baselines import MostPop

        mostpop = MostPop()
        mostpop.fit(od_dataset)
        config = ABTestConfig(days=3, users_per_day_per_method=5, seed=0)
        simulator = ABTestSimulator(od_dataset, config)
        tasks = od_dataset.ranking_tasks(num_candidates=15, max_tasks=40)
        result = simulator.run(
            {"ODNET": trained_odnet, "MostPop": mostpop}, tasks
        )
        assert result.methods == ["ODNET", "MostPop"]
        for method in result.methods:
            assert result.impressions[method].shape == (3,)
            daily = result.daily_ctr(method)
            assert np.all((daily >= 0) & (daily <= 1))
            assert 0 <= result.mean_ctr(method) <= 1

    def test_impressions_bounded_by_config(self, trained_odnet, od_dataset):
        config = ABTestConfig(days=2, users_per_day_per_method=4, top_k=6,
                              seed=0)
        simulator = ABTestSimulator(od_dataset, config)
        tasks = od_dataset.ranking_tasks(num_candidates=10, max_tasks=20)
        result = simulator.run({"ODNET": trained_odnet}, tasks)
        impressions = result.impressions["ODNET"]
        # Cascade: at least one impression per user, at most top_k each.
        assert np.all(impressions >= 4)
        assert np.all(impressions <= 4 * 6)

    def test_improvement_metric(self, trained_odnet, od_dataset):
        from repro.baselines import MostPop

        mostpop = MostPop()
        mostpop.fit(od_dataset)
        config = ABTestConfig(days=6, users_per_day_per_method=30, seed=2)
        tasks = od_dataset.ranking_tasks(
            num_candidates=20, rng=np.random.default_rng(2), max_tasks=110
        )
        result = ABTestSimulator(od_dataset, config).run(
            {"ODNET": trained_odnet, "MostPop": mostpop}, tasks
        )
        # A trained ODNET must hold a CTR edge over raw popularity.
        assert result.improvement("ODNET", "MostPop") > 0

    def test_relevance_anchored_to_truth(self, od_dataset, trained_odnet):
        simulator = ABTestSimulator(od_dataset, ABTestConfig())
        task = od_dataset.ranking_tasks(num_candidates=10, max_tasks=1)[0]
        exact = simulator._relevance(task, task.point.target)
        other = ODPair(
            task.point.target.origin,
            (task.point.target.destination + 1) % od_dataset.num_cities,
        )
        assert exact > simulator._relevance(task, other)
