"""Serving fast path: cached ranking, rank_many, micro-batched platform.

Also pins tie determinism end-to-end: candidates with exactly equal
scores come back in candidate order (stable mergesort argsort), so a
future vectorisation cannot silently reshuffle recommendation lists.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.data.schema import ODPair
from repro.perf import MicroBatchConfig
from repro.serving import CandidateRecall, FlightRecommender, RankingService


@pytest.fixture(scope="module")
def recall(od_dataset):
    return CandidateRecall(
        od_dataset.source.world, od_dataset.route_popularity
    )


@pytest.fixture(scope="module")
def points(od_dataset):
    return od_dataset.source.test_points[:6]


class _ConstantScorer:
    """A model that scores every pair identically — all ties."""

    def score_pairs(self, batch):
        return np.zeros(len(batch))


class _BucketScorer:
    """Scores that collide in buckets: many exact ties, several levels."""

    def score_pairs(self, batch):
        return np.asarray(
            [float(o % 3) for o in np.asarray(batch.candidate_origin)]
        )


class TestTieDeterminism:
    def test_all_ties_keep_candidate_order(self, od_dataset, points):
        service = RankingService(_ConstantScorer(), od_dataset)
        point = points[0]
        candidates = [
            ODPair(o, d) for o in range(4) for d in range(4) if o != d
        ]
        ranked = service.rank(
            point.history, candidates, day=point.day, k=len(candidates)
        )
        assert [s.pair for s in ranked] == candidates

    def test_bucketed_ties_stable_within_bucket(self, od_dataset, points):
        service = RankingService(_BucketScorer(), od_dataset)
        point = points[0]
        candidates = [ODPair(o, (o + 1) % 8) for o in range(8)]
        ranked = service.rank(
            point.history, candidates, day=point.day, k=len(candidates)
        )
        # Within each equal-score bucket, candidate order is preserved.
        by_score: dict[float, list[ODPair]] = {}
        for scored in ranked:
            by_score.setdefault(scored.score, []).append(scored.pair)
        for score, pairs in by_score.items():
            expected = [
                pair for pair in candidates if float(pair.origin % 3) == score
            ]
            assert pairs == expected

    def test_rank_twice_identical(self, trained_odnet, od_dataset, recall,
                                  points):
        service = RankingService(trained_odnet, od_dataset)
        point = points[0]
        candidates = recall.candidate_pairs(point.history)
        first = service.rank(point.history, candidates, day=point.day, k=10)
        second = service.rank(point.history, candidates, day=point.day, k=10)
        assert [(s.pair, s.score) for s in first] == [
            (s.pair, s.score) for s in second
        ]


class TestCachedRanking:
    def test_cached_equals_uncached(self, trained_odnet, od_dataset, recall,
                                    points):
        cached = RankingService(trained_odnet, od_dataset, use_cache=True)
        uncached = RankingService(trained_odnet, od_dataset, use_cache=False)
        assert cached.session is not None and uncached.session is None
        for point in points:
            candidates = recall.candidate_pairs(point.history)
            a = cached.rank(point.history, candidates, day=point.day, k=10)
            b = uncached.rank(point.history, candidates, day=point.day, k=10)
            assert [(s.pair, s.score) for s in a] == [
                (s.pair, s.score) for s in b
            ]

    def test_non_hsgc_model_falls_back(self, od_dataset):
        service = RankingService(_ConstantScorer(), od_dataset)
        assert service.session is None  # no embedding_tables protocol


class TestRankMany:
    def test_matches_rank_request_by_request(self, trained_odnet,
                                             od_dataset, recall, points):
        service = RankingService(trained_odnet, od_dataset)
        requests = [
            (p.history, recall.candidate_pairs(p.history), p.day)
            for p in points
        ]
        combined = service.rank_many(requests, k=7)
        assert len(combined) == len(requests)
        for (history, candidates, day), ranked in zip(requests, combined):
            single = service.rank(history, candidates, day=day, k=7)
            # Same ranking; scores equal up to float associativity (BLAS
            # sums in a different order for the combined batch shape).
            assert [s.pair for s in ranked] == [s.pair for s in single]
            np.testing.assert_allclose(
                [s.score for s in ranked],
                [s.score for s in single],
                rtol=1e-9,
            )

    def test_empty_candidate_requests(self, trained_odnet, od_dataset,
                                      recall, points):
        service = RankingService(trained_odnet, od_dataset)
        point = points[0]
        candidates = recall.candidate_pairs(point.history)
        results = service.rank_many(
            [
                (point.history, [], point.day),
                (point.history, candidates, point.day),
                (point.history, [], point.day),
            ],
            k=5,
        )
        assert results[0] == [] and results[2] == []
        assert len(results[1]) == 5

    def test_all_empty(self, trained_odnet, od_dataset, points):
        service = RankingService(trained_odnet, od_dataset)
        point = points[0]
        assert service.rank_many([(point.history, [], point.day)]) == [[]]


class TestPlatformMicroBatch:
    def test_concurrent_recommend_matches_direct(self, trained_odnet,
                                                 od_dataset, points):
        batched = FlightRecommender(
            trained_odnet, od_dataset,
            microbatch=MicroBatchConfig(max_batch=3, max_wait_ms=10.0),
        )
        direct = FlightRecommender(trained_odnet, od_dataset)
        with ThreadPoolExecutor(max_workers=3) as pool:
            futures = [
                pool.submit(
                    batched.recommend,
                    user_id=p.history.user_id, day=p.day, k=5,
                )
                for p in points
            ]
            via_batcher = [f.result() for f in futures]
        assert batched.batcher.batched_requests == len(points)
        for point, response in zip(points, via_batcher):
            expected = direct.recommend(
                user_id=point.history.user_id, day=point.day, k=5
            )
            assert [f.pair for f in response.flights] == [
                f.pair for f in expected.flights
            ]
            np.testing.assert_allclose(
                [f.score for f in response.flights],
                [f.score for f in expected.flights],
                rtol=1e-9,
            )

    def test_recommend_many_matches_recommend(self, trained_odnet,
                                              od_dataset, points):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        batch = recommender.recommend_many(
            [(p.history.user_id, p.day) for p in points], k=5
        )
        for point, response in zip(points, batch):
            single = recommender.recommend(
                user_id=point.history.user_id, day=point.day, k=5
            )
            assert [f.pair for f in response.flights] == [
                f.pair for f in single.flights
            ]
            np.testing.assert_allclose(
                [f.score for f in response.flights],
                [f.score for f in single.flights],
                rtol=1e-9,
            )

    def test_recommend_many_cold_start(self, trained_odnet, od_dataset):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        response = recommender.recommend_many([(10 ** 9, 720)], k=5)[0]
        assert len(response) > 0
        assert response.degraded
