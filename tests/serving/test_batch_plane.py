"""Segment-wise top-k: the batch plane's ranking layer.

``RankingService._segment_top_k`` selects and orders every request's
top-k in one vectorized pass.  These tests pin its two contracts against
the historical stable-mergesort ``_top_k``:

- *tie determinism* — candidates with exactly equal scores come back in
  candidate order, including the adversarial all-scores-identical case;
- *segment isolation* — a candidate can never leak into another
  request's result list, whatever the score landscape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.schema import ODPair
from repro.serving import RankingService


def _segments(rng, num_segments, max_count, min_count=1):
    """Random segments with guaranteed-distinct pairs across segments."""
    segments = []
    for index in range(num_segments):
        count = int(rng.integers(min_count, max_count + 1))
        segments.append(
            [ODPair(1000 * index + j, 1000 * index + j + 1)
             for j in range(count)]
        )
    return segments


def _reference(segments, scores, counts, k):
    """Per-segment stable-mergesort top-k (the historical behaviour)."""
    out, offset = [], 0
    for segment, count in zip(segments, counts):
        out.append(RankingService._top_k(
            segment, scores[offset:offset + count], k
        ))
        offset += count
    return out


class TestEquivalenceWithStableSort:
    @pytest.mark.parametrize("k", [1, 3, 10, 200])
    def test_random_segments_match_reference(self, k):
        rng = np.random.default_rng(k)
        for trial in range(10):
            segments = _segments(rng, num_segments=6, max_count=17)
            counts = np.array([len(s) for s in segments])
            # Quantized scores force plenty of exact ties.
            scores = np.round(rng.random(counts.sum()) * 4) / 4
            assert RankingService._segment_top_k(
                segments, scores, counts, k
            ) == _reference(segments, scores, counts, k)

    def test_single_segment_matches_top_k(self):
        rng = np.random.default_rng(0)
        segments = _segments(rng, num_segments=1, max_count=30, min_count=30)
        scores = np.round(rng.random(30) * 2) / 2
        counts = np.array([30])
        assert RankingService._segment_top_k(
            segments, scores, counts, 7
        ) == _reference(segments, scores, counts, 7)

    def test_counts_below_k_return_everything_ordered(self):
        segments = [[ODPair(0, 1), ODPair(1, 2)], [ODPair(5, 6)]]
        scores = np.array([0.1, 0.9, 0.5])
        counts = np.array([2, 1])
        results = RankingService._segment_top_k(segments, scores, counts, 10)
        assert [s.pair for s in results[0]] == [ODPair(1, 2), ODPair(0, 1)]
        assert [s.pair for s in results[1]] == [ODPair(5, 6)]


class TestTieDeterminism:
    def test_all_identical_scores_everywhere(self):
        """The adversarial case: every score in every segment is equal."""
        rng = np.random.default_rng(3)
        segments = _segments(rng, num_segments=5, max_count=12)
        counts = np.array([len(s) for s in segments])
        scores = np.zeros(counts.sum())
        results = RankingService._segment_top_k(segments, scores, counts, 4)
        for segment, ranked in zip(segments, results):
            assert [s.pair for s in ranked] == segment[:4]

    def test_boundary_ties_resolved_in_candidate_order(self):
        # Three candidates tie at the k-th score; the earliest two win.
        segments = [[ODPair(i, i + 1) for i in range(6)]]
        scores = np.array([0.9, 0.5, 0.5, 0.5, 0.1, 0.95])
        counts = np.array([6])
        results = RankingService._segment_top_k(segments, scores, counts, 4)
        assert [s.pair for s in results[0]] == [
            ODPair(5, 6), ODPair(0, 1), ODPair(1, 2), ODPair(2, 3)
        ]


class TestSegmentIsolation:
    def test_no_cross_segment_leakage_under_identical_scores(self):
        rng = np.random.default_rng(11)
        segments = _segments(rng, num_segments=8, max_count=9)
        counts = np.array([len(s) for s in segments])
        scores = np.zeros(counts.sum())
        results = RankingService._segment_top_k(segments, scores, counts, 50)
        for segment, ranked in zip(segments, results):
            assert {s.pair for s in ranked} <= set(segment)
            assert len(ranked) == len(segment)

    def test_high_scores_cannot_cross_boundaries(self):
        # Segment 0 holds the globally best scores; segment 1 must still
        # return its own candidates.
        segments = [[ODPair(0, 1), ODPair(1, 2)], [ODPair(7, 8), ODPair(8, 9)]]
        scores = np.array([100.0, 99.0, 0.2, 0.1])
        counts = np.array([2, 2])
        results = RankingService._segment_top_k(segments, scores, counts, 2)
        assert [s.pair for s in results[1]] == [ODPair(7, 8), ODPair(8, 9)]
        assert [s.score for s in results[1]] == [0.2, 0.1]


class TestEdgeCases:
    def test_no_segments(self):
        assert RankingService._segment_top_k(
            [], np.zeros(0), np.zeros(0, dtype=np.int64), 5
        ) == []

    def test_k_zero(self):
        segments = [[ODPair(0, 1)]]
        assert RankingService._segment_top_k(
            segments, np.array([1.0]), np.array([1]), 0
        ) == [[]]

    def test_rank_many_isolates_requests_end_to_end(self, od_dataset):
        """All-tie scores through the real service: every request gets
        exactly its own candidates back, in candidate order."""

        class ConstantScorer:
            def score_pairs(self, batch):
                return np.zeros(len(batch))

        service = RankingService(ConstantScorer(), od_dataset)
        points = od_dataset.source.test_points[:4]
        requests = []
        for index, point in enumerate(points):
            # Valid city ids, but no pair appears in two requests.
            candidates = [
                ODPair(index * 5 + j, (index * 5 + j + 1) % 30)
                for j in range(5)
            ]
            requests.append((point.history, candidates, point.day))
        results = service.rank_many(requests, k=3)
        for (_, candidates, _), ranked in zip(requests, results):
            assert [s.pair for s in ranked] == candidates[:3]
