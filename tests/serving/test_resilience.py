"""Fault-tolerant serving: the Figure-9 path under chaos.

Covers the degradation ladder end to end: cold-start users, empty or
failing recall, a failing rank stage behind retry + circuit breaker,
deadline overruns — every request comes back non-empty with honest
``degraded``/``fallbacks`` metadata, and the obs counters agree.
"""

import pytest

from repro.obs import use_registry
from repro.resilience import (
    Deadline,
    FaultInjector,
    FaultSpec,
    use_fault_injector,
)
from repro.serving import FlightRecommender, ServingResilienceConfig
from tests.resilience.test_deadline import FakeClock


@pytest.fixture()
def recommender(trained_odnet, od_dataset):
    """A fresh recommender per test (breaker state must not leak)."""
    return FlightRecommender(
        trained_odnet,
        od_dataset,
        resilience=ServingResilienceConfig(
            breaker_window=8, breaker_min_calls=4, breaker_threshold=0.5
        ),
    )


@pytest.fixture()
def known_user(od_dataset):
    return od_dataset.source.test_points[0].history.user_id


class TestColdStart:
    def test_unknown_user_gets_popular_recommendations(self, recommender):
        response = recommender.recommend(user_id=10 ** 9, day=720, k=5)
        assert len(response) > 0
        assert response.degraded
        assert any(
            e.site == "features" and e.reason == "cold_start"
            for e in response.fallbacks
        )
        assert response.user_id == 10 ** 9

    def test_known_user_not_degraded(self, recommender, known_user):
        response = recommender.recommend(user_id=known_user, day=720, k=5)
        assert not response.degraded
        assert response.fallbacks == []


class TestInputValidation:
    def test_k_zero_rejected(self, recommender):
        with pytest.raises(ValueError, match="got 0"):
            recommender.recommend(user_id=1, day=720, k=0)

    def test_k_negative_rejected(self, recommender):
        with pytest.raises(ValueError, match="got -3"):
            recommender.recommend(user_id=1, day=720, k=-3)


class TestRecallDegradation:
    def test_empty_candidates_fall_back_to_popular_routes(
        self, recommender, known_user
    ):
        recommender.recall.candidate_pairs = lambda history: []
        response = recommender.recommend(user_id=known_user, day=720, k=5)
        assert len(response) > 0
        assert response.degraded
        assert any(
            e.site == "recall" and e.reason == "empty"
            for e in response.fallbacks
        )

    def test_recall_error_falls_back_to_popular_routes(
        self, recommender, known_user
    ):
        chaos = FaultInjector(seed=0).add(
            "recall.candidates", FaultSpec(error_rate=1.0)
        )
        with use_fault_injector(chaos):
            response = recommender.recommend(user_id=known_user, day=720, k=5)
        assert len(response) > 0
        assert any(e.site == "recall" for e in response.fallbacks)

    def test_k_larger_than_candidate_count(self, recommender, known_user):
        response = recommender.recommend(user_id=known_user, day=720, k=10000)
        assert 0 < len(response) < 10000
        assert not response.degraded
        scores = [f.score for f in response.flights]
        assert scores == sorted(scores, reverse=True)


class TestRankDegradation:
    def test_total_rank_outage_degrades_and_trips_breaker(
        self, recommender, known_user
    ):
        """The headline acceptance scenario: 100% rank.score failure."""
        chaos = FaultInjector(seed=0).add(
            "rank.score", FaultSpec(error_rate=1.0)
        )
        with use_registry() as registry, use_fault_injector(chaos):
            responses = [
                recommender.recommend(user_id=known_user, day=720, k=5)
                for _ in range(8)
            ]
            calls_when_open = chaos.calls("rank.score")
            # Breaker is open: further requests skip the stage entirely.
            assert recommender.rank_breaker.state == "open"
            late = recommender.recommend(user_id=known_user, day=720, k=5)
            assert chaos.calls("rank.score") == calls_when_open

        for response in responses + [late]:
            assert len(response) > 0
            assert response.degraded
        # Popularity-ordered: scores are route popularity, descending.
        scores = [f.score for f in late.flights]
        assert scores == sorted(scores, reverse=True)
        assert any(e.reason == "breaker_open" for e in late.fallbacks)

        assert registry.counter("resilience.fallbacks").value >= 9
        assert registry.counter("resilience.breaker_open").value == 1
        assert registry.gauge(
            "resilience.breaker_state", labels={"site": "rank"}
        ).value == 2.0
        assert registry.counter("serving.degraded_requests").value == 9

    def test_transient_rank_failure_recovers_via_retry(
        self, recommender, known_user
    ):
        # One injected fault, then healthy: the retry absorbs it.
        chaos = FaultInjector(seed=0).add(
            "rank.score", FaultSpec(error_rate=1.0, max_faults=1)
        )
        with use_registry() as registry, use_fault_injector(chaos):
            response = recommender.recommend(user_id=known_user, day=720, k=5)
        assert not response.degraded
        assert registry.counter(
            "resilience.retries", labels={"site": "rank"}
        ).value == 1


class TestDeadlines:
    def test_expired_deadline_degrades_instead_of_erroring(
        self, recommender, known_user
    ):
        clock = FakeClock()
        deadline = Deadline(10.0, clock=clock)
        clock.advance_ms(11)
        response = recommender.recommend(
            user_id=known_user, day=720, k=5, deadline=deadline
        )
        assert len(response) > 0
        assert response.degraded
        assert any(
            e.site == "rank" and e.reason == "deadline"
            for e in response.fallbacks
        )

    def test_stage_overrun_recorded(self, trained_odnet, od_dataset,
                                    known_user):
        # A 0.001ms rank budget cannot be met; the overrun histogram and
        # the response both say so.
        recommender = FlightRecommender(
            trained_odnet, od_dataset,
            resilience=ServingResilienceConfig(
                deadline_ms=10_000.0,
                stage_budgets_ms={"rank": 0.001},
            ),
        )
        with use_registry() as registry:
            response = recommender.recommend(user_id=known_user, day=720, k=5)
        assert len(response) > 0
        histogram = registry.histogram(
            "resilience.stage_overrun_ms", labels={"stage": "rank"}
        )
        assert histogram.count == 1

    def test_generous_deadline_stays_clean(self, recommender, known_user):
        response = recommender.recommend(
            user_id=known_user, day=720, k=5, deadline=60_000.0
        )
        assert not response.degraded
