"""CoarseANNIndex: recall, sublinearity, and the tie-order contract."""

import numpy as np
import pytest

from repro.serving import ANNConfig, CandidateRecall, CoarseANNIndex
from repro.serving.recall import RecallConfig


def _structured_corpus(n, dim, rng, num_patterns=10):
    """A pattern-mixture corpus — the shape trained city tables have."""
    centers = rng.normal(size=(num_patterns, dim)).astype(np.float32) * 2.0
    assign = rng.integers(0, num_patterns, size=n)
    return centers[assign] + rng.normal(size=(n, dim)).astype(np.float32)


@pytest.fixture(scope="module")
def corpus():
    return _structured_corpus(2000, 16, np.random.default_rng(0))


@pytest.fixture(scope="module")
def index(corpus):
    return CoarseANNIndex(corpus, ANNConfig(seed=0))


class TestConstruction:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            CoarseANNIndex(np.zeros((0, 4), dtype=np.float32))
        with pytest.raises(ValueError):
            CoarseANNIndex(np.zeros(8, dtype=np.float32))

    def test_derived_shape(self, index):
        assert index.num_clusters == int(np.ceil(np.sqrt(2000)))
        assert 1 <= index.nprobe <= index.num_clusters

    def test_deterministic_given_seed(self, corpus):
        a = CoarseANNIndex(corpus, ANNConfig(seed=3))
        b = CoarseANNIndex(corpus, ANNConfig(seed=3))
        query = corpus[0]
        np.testing.assert_array_equal(
            a.search(query, 10), b.search(query, 10)
        )

    def test_tiny_corpus(self):
        points = np.eye(3, dtype=np.float32)
        index = CoarseANNIndex(points, ANNConfig(seed=0))
        assert list(index.search(points[1], 1)) == [1]


class TestExactness:
    def test_full_probe_matches_full_scan(self, corpus):
        """With every cluster probed the index degenerates to the exact
        scan — identical ids, identical order."""
        index = CoarseANNIndex(
            corpus, ANNConfig(num_clusters=16, nprobe=16, seed=0)
        )
        for query in corpus[:20]:
            np.testing.assert_array_equal(
                index.search(query, 15), index.full_scan(query, 15)
            )

    def test_scores_are_exact_inner_products(self, index, corpus):
        query = corpus[5]
        ids, scores = index.search_with_scores(query, 10)
        np.testing.assert_allclose(
            scores, corpus[ids] @ query, rtol=1e-6
        )

    def test_k_clamped_to_corpus(self, index, corpus):
        ids = index.search(corpus[0], 10_000)
        assert ids.size <= index.num_points
        assert index.search(corpus[0], 0).size == 0


class TestTieOrder:
    def test_duplicate_embeddings_break_ties_by_id(self):
        """The _segment_top_k discipline: equal scores order by ascending
        id, in both the index and the exact baseline."""
        rng = np.random.default_rng(1)
        base = rng.normal(size=(50, 8)).astype(np.float32)
        # Rows 10..19 are exact copies of rows 0..9: guaranteed ties.
        corpus = np.vstack([base[:10], base[:10], base[10:]])
        index = CoarseANNIndex(
            corpus, ANNConfig(num_clusters=4, nprobe=4, seed=0)
        )
        query = base[3]
        ids = index.search(query, 6)
        np.testing.assert_array_equal(ids, index.full_scan(query, 6))
        scores = corpus[ids] @ query
        for i in range(len(ids) - 1):
            assert scores[i] > scores[i + 1] or (
                scores[i] == scores[i + 1] and ids[i] < ids[i + 1]
            )
        # The duplicate pair (3, 13) ties: the lower id must come first.
        position = {int(i): p for p, i in enumerate(ids)}
        assert position[3] < position[13]


class TestRecallAndSublinearity:
    def test_recall_gate_on_structured_corpus(self, index, corpus):
        rng = np.random.default_rng(2)
        queries = corpus[rng.integers(0, corpus.shape[0], size=40)]
        assert index.recall_at_k(queries, 10) >= 0.95

    def test_scan_is_sublinear(self, corpus):
        index = CoarseANNIndex(corpus, ANNConfig(seed=0))
        for query in corpus[:10]:
            index.search(query, 10)
        assert 0.0 < index.scan_fraction < 0.6

    def test_unquantized_path(self, corpus):
        exact_codes = CoarseANNIndex(
            corpus, ANNConfig(quantize=False, seed=0)
        )
        query = corpus[7]
        ids = exact_codes.search(query, 10)
        assert ids.size == 10
        assert exact_codes._codes.dtype == np.float32


class TestRecallIntegration:
    """CandidateRecall with a destination index: personalized embedding
    recall joins the Section VI-B strategies."""

    @pytest.fixture()
    def recall(self, fliggy_dataset, trained_odnet):
        tables = trained_odnet.embedding_tables()
        cities = np.asarray(tables["d"][1].data)
        # 30 cities is tiny; probe everything so the integration test
        # exercises the recall plumbing, not ANN approximation error.
        index = CoarseANNIndex(
            cities.astype(np.float32),
            ANNConfig(num_clusters=4, nprobe=4, seed=0),
        )
        from repro.data import ODDataset

        route_popularity = ODDataset(
            fliggy_dataset, max_long=10, max_short=6
        ).route_popularity
        return CandidateRecall(
            fliggy_dataset.world, route_popularity,
            destination_index=index,
        ), np.asarray(tables["d"][0].data)

    def test_embedding_destinations_requires_index(self, fliggy_dataset):
        bare = CandidateRecall(
            fliggy_dataset.world,
            np.ones((30, 30)),
        )
        with pytest.raises(ValueError, match="destination_index"):
            bare.embedding_destinations(np.zeros(16))

    def test_embedding_destinations_capped(self, recall):
        service, users = recall
        ids = service.embedding_destinations(users[0])
        assert ids.size == RecallConfig().max_embedding_destinations
        assert ids.size == len(set(ids.tolist()))

    def test_query_embedding_extends_candidates(self, recall, fliggy_dataset):
        service, users = recall
        point = fliggy_dataset.test_points[0]
        user = point.history.user_id
        without = service.candidate_destinations(point.history)
        with_ann = service.candidate_destinations(
            point.history, query_embedding=users[user]
        )
        assert set(without) <= set(with_ann)
        ann_ids = set(service.embedding_destinations(users[user]).tolist())
        assert ann_ids <= set(with_ann)

    def test_candidate_pairs_still_capped_and_deduped(
        self, recall, fliggy_dataset
    ):
        service, users = recall
        point = fliggy_dataset.test_points[0]
        pairs = service.candidate_pairs(
            point.history, query_embedding=users[point.history.user_id]
        )
        assert len(pairs) <= RecallConfig().max_pairs
        assert len(pairs) == len(set(pairs))
        assert all(p.origin != p.destination for p in pairs)
