"""Observability wired through the Figure 9 serving path."""

import numpy as np

from repro.obs import RecordingProfiler, render_summary, use_observability
from repro.serving import FlightRecommender


def _any_test_user(od_dataset):
    return od_dataset.source.test_points[0].history.user_id


class TestRecommendInstrumentation:
    def test_stage_spans_and_counters(self, trained_odnet, od_dataset):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        with use_observability() as (registry, tracer):
            response = recommender.recommend(
                user_id=_any_test_user(od_dataset), day=725, k=5
            )
        assert len(response) > 0

        names = [span.name for span in tracer.finished()]
        for stage in ("features", "recall", "rank"):
            assert stage in names
        root = tracer.finished("recommend")[0]
        assert root.is_root
        for stage in ("features", "recall", "rank"):
            assert tracer.finished(stage)[0].parent_id == root.span_id
        # The ranking service adds its own sub-spans under "rank".
        rank_id = tracer.finished("rank")[0].span_id
        assert tracer.finished("rank.score")[0].parent_id == rank_id

        assert registry.counter("serving.requests").value == 1
        candidates = registry.counter("serving.candidates").value
        assert candidates > 0
        assert registry.counter("ranking.scored_pairs").value == candidates
        assert registry.counter("recall.pairs").value == candidates
        latency = registry.histogram("serving.latency_ms")
        assert latency.count == 1 and latency.percentile(50) > 0

        summary = render_summary(registry, tracer)
        assert "serving.requests" in summary
        assert "recommend" in summary and "recall" in summary

    def test_counters_accumulate_over_requests(self, trained_odnet, od_dataset):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        users = [
            p.history.user_id for p in od_dataset.source.test_points[:3]
        ]
        with use_observability() as (registry, tracer):
            for user_id in users:
                recommender.recommend(user_id=user_id, day=725, k=5)
        assert registry.counter("serving.requests").value == len(users)
        assert registry.histogram("serving.latency_ms").count == len(users)
        assert len(tracer.finished("recommend")) == len(users)

    def test_disabled_observability_changes_nothing(
        self, trained_odnet, od_dataset
    ):
        recommender = FlightRecommender(trained_odnet, od_dataset)
        user = _any_test_user(od_dataset)
        baseline = recommender.recommend(user_id=user, day=725, k=5)
        with use_observability():
            observed = recommender.recommend(user_id=user, day=725, k=5)
        assert [f.pair for f in baseline.flights] == [
            f.pair for f in observed.flights
        ]
        assert np.allclose(
            [f.score for f in baseline.flights],
            [f.score for f in observed.flights],
        )


class TestRequestProfiler:
    def test_on_request_hook(self, trained_odnet, od_dataset):
        profiler = RecordingProfiler()
        recommender = FlightRecommender(
            trained_odnet, od_dataset, profiler=profiler
        )
        user = _any_test_user(od_dataset)
        recommender.recommend(user_id=user, day=725, k=5)
        (event,) = profiler.events
        assert event["hook"] == "request"
        assert event["user_id"] == user and event["day"] == 725
        assert event["latency_ms"] > 0
        assert event["num_candidates"] > 0 and event["k"] == 5


class TestStreamingIngestionMetrics:
    def test_rtfs_counters(self, trained_odnet, od_dataset):
        from repro.data.schema import BookingEvent, ClickEvent

        recommender = FlightRecommender(trained_odnet, od_dataset)
        with use_observability() as (registry, _):
            recommender.features.record_booking(
                BookingEvent(0, 1, 2, day=700, price=80.0)
            )
            recommender.features.record_click(ClickEvent(0, 1, 3, day=701))
        assert registry.counter("rtfs.bookings_ingested").value == 1
        assert registry.counter("rtfs.clicks_ingested").value == 1
