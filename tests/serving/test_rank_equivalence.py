"""rank vs rank_many equivalence across every score_pairs implementation.

``rank_many`` must be a pure batching transform: for any model, ranking
N requests in one pooled forward returns the same pairs in the same
order as N separate ``rank`` calls.  Scores may differ in the last float
bits (BLAS picks different summation orders for different batch shapes,
and the segment layout deduplicates per-point work), so scores are
compared with a tight relative tolerance while *order* must be exact.

The matrix covers ODNET and both ablation axes (graph, joint learning)
plus the non-Tensor baselines (GBDT) and the sequential/graph-attention
families, including the empty-candidates and single-candidate edges.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import GBDTRanker, LSTMRanker, STPUDGATRanker
from repro.core import build_odnet, build_stl
from repro.serving import CandidateRecall, RankingService

from tests.conftest import TINY_MODEL_CONFIG


def _odnet(dataset):
    return build_odnet(dataset, TINY_MODEL_CONFIG)


def _odnet_no_graph(dataset):
    return build_odnet(dataset, TINY_MODEL_CONFIG, variant="ODNET-G")


def _stl_graph(dataset):
    return build_stl(dataset, TINY_MODEL_CONFIG, variant="STL+G")


def _stl_no_graph(dataset):
    return build_stl(dataset, TINY_MODEL_CONFIG, variant="STL-G")


def _gbdt(dataset):
    model = GBDTRanker(n_trees=4, max_depth=2)
    model.fit(dataset)
    return model


def _lstm(dataset):
    return LSTMRanker(dataset, dim=8)


def _stp_udgat(dataset):
    return STPUDGATRanker(dataset, dim=8)


MODELS = {
    "odnet": _odnet,
    "odnet-no-graph": _odnet_no_graph,
    "stl+g": _stl_graph,
    "stl-g": _stl_no_graph,
    "gbdt": _gbdt,
    "lstm": _lstm,
    "stp-udgat": _stp_udgat,
}


@pytest.fixture(scope="module")
def recall(od_dataset):
    return CandidateRecall(
        od_dataset.source.world, od_dataset.route_popularity
    )


@pytest.fixture(scope="module")
def requests(od_dataset, recall):
    """A mixed request list: full recall sets, a single candidate, and an
    empty candidate list."""
    points = od_dataset.source.test_points[:5]
    out = [
        (p.history, recall.candidate_pairs(p.history), p.day)
        for p in points[:3]
    ]
    single = points[3]
    out.append((
        single.history, recall.candidate_pairs(single.history)[:1], single.day
    ))
    empty = points[4]
    out.append((empty.history, [], empty.day))
    return out


@pytest.mark.parametrize("name", sorted(MODELS))
def test_rank_many_equals_rank_per_request(name, od_dataset, requests):
    service = RankingService(MODELS[name](od_dataset), od_dataset)
    batched = service.rank_many(requests, k=10)
    assert len(batched) == len(requests)
    for (history, candidates, day), pooled in zip(requests, batched):
        solo = service.rank(history, candidates, day=day, k=10)
        assert [s.pair for s in pooled] == [s.pair for s in solo]
        np.testing.assert_allclose(
            [s.score for s in pooled],
            [s.score for s in solo],
            rtol=1e-9,
        )


def test_empty_candidates_yield_empty_result(od_dataset, requests):
    service = RankingService(_odnet(od_dataset), od_dataset)
    assert service.rank_many(requests, k=10)[-1] == []
    history, _, day = requests[-1]
    assert service.rank(history, [], day=day, k=10) == []


def test_single_candidate_round_trips(od_dataset, requests):
    service = RankingService(_odnet(od_dataset), od_dataset)
    history, candidates, day = requests[-2]
    assert len(candidates) == 1
    [result] = service.rank(history, candidates, day=day, k=10)
    assert result.pair == candidates[0]


def test_all_empty_request_list(od_dataset):
    service = RankingService(_odnet(od_dataset), od_dataset)
    assert service.rank_many([], k=10) == []
