"""Recommendation explanations."""

import numpy as np
import pytest

from repro.data.schema import BookingEvent, ClickEvent, ODPair, UserHistory
from repro.serving import RecommendationExplainer


@pytest.fixture(scope="module")
def explainer(od_dataset):
    return RecommendationExplainer(
        od_dataset.source.world, od_dataset.route_popularity
    )


def _history(user=0, current=0, bookings=(), clicks=()):
    return UserHistory(
        user_id=user, current_city=current,
        bookings=list(bookings), clicks=list(clicks),
    )


class TestExplanations:
    def test_return_ticket(self, explainer):
        history = _history(
            current=5,
            bookings=[BookingEvent(0, 2, 5, 100, 300.0)],
        )
        explanation = explainer.explain(history, ODPair(5, 2))
        assert "return_ticket" in explanation.reasons
        assert explanation.primary == "return_ticket"

    def test_clicked(self, explainer):
        history = _history(clicks=[ClickEvent(0, 1, 9, 100)], current=1)
        explanation = explainer.explain(history, ODPair(1, 9))
        assert "clicked" in explanation.reasons

    def test_repeat_route(self, explainer):
        history = _history(
            current=1, bookings=[BookingEvent(0, 1, 9, 50, 200.0)]
        )
        explanation = explainer.explain(history, ODPair(1, 9))
        assert "repeat_route" in explanation.reasons

    def test_origin_explored(self, explainer, od_dataset):
        world = od_dataset.source.world
        current = 0
        nearby = world.nearby_cities(current, 400.0)
        if nearby.size == 0:
            pytest.skip("no nearby city in this world")
        origin = int(nearby[0])
        destination = (origin + 1) % world.num_cities
        if destination == current:
            destination = (destination + 1) % world.num_cities
        explanation = explainer.explain(
            _history(current=current), ODPair(origin, destination)
        )
        assert "origin_explored" in explanation.reasons

    def test_pattern_match(self, explainer, od_dataset):
        world = od_dataset.source.world
        seaside = world.cities_with_pattern("seaside")
        if seaside.size < 2:
            pytest.skip("need two seaside cities")
        visited, candidate = int(seaside[0]), int(seaside[1])
        history = _history(
            current=visited, bookings=[BookingEvent(0, 0, visited, 10, 100.0)]
        )
        explanation = explainer.explain(history, ODPair(visited, candidate))
        assert "pattern_match" in explanation.reasons

    def test_personalized_fallback(self, explainer, od_dataset):
        world = od_dataset.source.world
        # A far-away, never-seen, pattern-less pair: since all cities carry
        # patterns in this world, pick a visited-pattern-free history.
        explanation = explainer.explain(
            _history(current=0), ODPair(0, 1)
        )
        assert explanation.reasons  # always at least one reason
        assert explanation.detail

    def test_explain_all_aligns(self, explainer):
        history = _history(current=0)
        pairs = [ODPair(0, 1), ODPair(0, 2)]
        explanations = explainer.explain_all(history, pairs)
        assert [e.pair for e in explanations] == pairs

    def test_real_recommendations_explainable(self, explainer, od_dataset,
                                              trained_odnet):
        """Every pair served by the recommender gets a non-empty reason."""
        from repro.serving import FlightRecommender

        recommender = FlightRecommender(trained_odnet, od_dataset)
        point = od_dataset.source.test_points[0]
        response = recommender.recommend(
            point.history.user_id, day=point.day, k=5
        )
        for flight in response.flights:
            explanation = explainer.explain(point.history, flight.pair)
            assert explanation.reasons
