"""Weight initialisers (paper protocol: Gaussian mu=0, sigma=0.05)."""

import numpy as np

from repro.nn import init


class TestGaussian:
    def test_paper_defaults(self):
        rng = np.random.default_rng(0)
        weights = init.gaussian((500, 500), rng)
        assert abs(weights.mean()) < 0.001
        assert abs(weights.std() - init.PAPER_SIGMA) < 0.001

    def test_custom_sigma(self):
        rng = np.random.default_rng(0)
        weights = init.gaussian((500, 500), rng, sigma=0.2)
        assert abs(weights.std() - 0.2) < 0.005


class TestXavier:
    def test_bound(self):
        rng = np.random.default_rng(0)
        weights = init.xavier_uniform((64, 64), rng)
        bound = np.sqrt(6.0 / 128)
        assert np.abs(weights).max() <= bound

    def test_1d_shape(self):
        rng = np.random.default_rng(0)
        assert init.xavier_uniform((10,), rng).shape == (10,)


class TestHe:
    def test_scale(self):
        rng = np.random.default_rng(0)
        weights = init.he_normal((400, 100), rng)
        assert abs(weights.std() - np.sqrt(2.0 / 100)) < 0.01


class TestZeros:
    def test_zeros(self):
        assert not init.zeros((3, 3)).any()
