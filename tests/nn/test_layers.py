"""Layer behaviour: Linear, Embedding, MLP, Dropout, LayerNorm."""

import numpy as np
import pytest

from repro.nn import MLP, Dropout, Embedding, LayerNorm, Linear
from repro.tensor import Tensor, functional as F


class TestLinear:
    def test_forward_value(self, rng):
        layer = Linear(3, 2, rng)
        x = np.ones((4, 3))
        expected = x @ layer.weight.data.T + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_3d_input(self, rng):
        layer = Linear(3, 5, rng)
        out = layer(Tensor(np.ones((2, 4, 3))))
        assert out.shape == (2, 4, 5)

    def test_gradient_flows_to_weights(self, rng):
        layer = Linear(3, 2, rng)
        layer(Tensor(np.ones((4, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_paper_gaussian_init_scale(self):
        rng = np.random.default_rng(0)
        layer = Linear(200, 200, rng)
        assert abs(layer.weight.data.std() - 0.05) < 0.005


class TestEmbedding:
    def test_lookup_rows(self, rng):
        emb = Embedding(10, 4, rng)
        out = emb(np.array([1, 3, 1]))
        np.testing.assert_allclose(out.data[0], emb.weight.data[1])
        np.testing.assert_allclose(out.data[2], emb.weight.data[1])

    def test_2d_indices(self, rng):
        emb = Embedding(10, 4, rng)
        assert emb(np.zeros((2, 5), dtype=int)).shape == (2, 5, 4)

    def test_out_of_range_raises(self, rng):
        emb = Embedding(10, 4, rng)
        with pytest.raises(IndexError):
            emb(np.array([10]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))

    def test_gradient_scatter_adds_for_repeats(self, rng):
        emb = Embedding(5, 2, rng)
        out = emb(np.array([2, 2, 3]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[2], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[3], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])


class TestMLP:
    def test_hidden_layers_and_activation(self, rng):
        mlp = MLP(4, [8, 8], 1, rng, final_activation=F.sigmoid)
        out = mlp(Tensor(np.ones((3, 4))))
        assert out.shape == (3, 1)
        assert np.all((out.data > 0) & (out.data < 1))

    def test_no_hidden(self, rng):
        mlp = MLP(4, [], 2, rng)
        assert len(mlp.layers) == 1

    def test_trains_to_fit_xor_ish(self, rng):
        from repro.optim import Adam

        X = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0.0, 1.0, 1.0, 0.0])
        mlp = MLP(2, [16], 1, rng, final_activation=F.sigmoid)
        opt = Adam(mlp.parameters(), lr=0.05)
        for _ in range(400):
            opt.zero_grad()
            loss = F.binary_cross_entropy(mlp(Tensor(X)).squeeze(-1), y)
            loss.backward()
            opt.step()
        assert loss.item() < 0.1


class TestDropout:
    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_eval_mode_identity(self, rng):
        drop = Dropout(0.5, rng)
        drop.eval()
        x = Tensor(np.ones(10))
        assert drop(x) is x

    def test_train_mode_masks(self, rng):
        drop = Dropout(0.5, rng)
        out = drop(Tensor(np.ones(1000)))
        kept = out.data != 0
        assert 0.35 < kept.mean() < 0.65
        np.testing.assert_allclose(out.data[kept], 2.0)


class TestLayerNorm:
    def test_normalises_last_axis(self):
        ln = LayerNorm(8)
        out = ln(Tensor(np.random.default_rng(0).normal(2.0, 3.0, (4, 8))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.data.std(axis=-1), 1.0, atol=1e-3)

    def test_gradients_flow(self):
        ln = LayerNorm(4)
        x = Tensor(np.random.default_rng(1).normal(size=(2, 4)),
                   requires_grad=True)
        ln(x).sum().backward()
        assert x.grad is not None
        assert ln.gamma.grad is not None
