"""Multi-head attention (Eq. 3) and the PEC query attention (Eqs. 4-5)."""

import numpy as np
import pytest

from repro.nn import MultiHeadAttention, QueryAttention
from repro.tensor import Tensor


class TestMultiHeadAttention:
    def test_dim_must_divide_heads(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3, rng)

    def test_output_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        out = mha(Tensor(np.random.default_rng(0).normal(size=(3, 5, 8))))
        assert out.shape == (3, 5, 8)

    def test_masked_positions_do_not_influence_output(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        base = np.random.default_rng(0).normal(size=(1, 4, 8))
        mask = np.array([[True, True, False, False]])
        out1 = mha(Tensor(base), mask=mask).data
        poisoned = base.copy()
        poisoned[0, 2:] = 1e3  # masked rows changed
        out2 = mha(Tensor(poisoned), mask=mask).data
        # Valid (query) rows must be unaffected by masked key content.
        np.testing.assert_allclose(out1[0, :2], out2[0, :2], atol=1e-8)

    def test_cross_attention_context(self, rng):
        mha = MultiHeadAttention(8, 2, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 3, 8)))
        ctx = Tensor(np.random.default_rng(1).normal(size=(2, 6, 8)))
        out = mha(x, context=ctx)
        assert out.shape == (2, 3, 8)

    def test_gradients_reach_all_projections(self, rng):
        mha = MultiHeadAttention(8, 4, rng)
        out = mha(Tensor(np.random.default_rng(0).normal(size=(2, 3, 8))))
        out.sum().backward()
        for param in mha.parameters():
            assert param.grad is not None


class TestQueryAttention:
    def test_output_shape(self, rng):
        qa = QueryAttention(8, rng)
        out = qa(
            Tensor(np.random.default_rng(0).normal(size=(3, 8))),
            Tensor(np.random.default_rng(1).normal(size=(3, 5, 8))),
        )
        assert out.shape == (3, 8)

    def test_fully_masked_rows_give_zero_vector(self, rng):
        qa = QueryAttention(4, rng)
        mask = np.array([[True, True], [False, False]])
        out = qa(
            Tensor(np.ones((2, 4))),
            Tensor(np.ones((2, 2, 4))),
            mask=mask,
        )
        np.testing.assert_allclose(out.data[1], np.zeros(4))

    def test_attention_weights_select_similar_key(self, rng):
        # With W* = I-ish learned weights the mechanism should strongly
        # prefer a key identical to the (projected) query over an
        # orthogonal one; check via a hand-set W*.
        qa = QueryAttention(2, rng)
        qa.w_star.data = np.eye(2) * 5.0
        query = Tensor(np.array([[1.0, 0.0]]))
        keys = Tensor(np.array([[[1.0, 0.0], [0.0, 1.0]]]))
        out = qa(query, keys).data[0]
        assert out[0] > 0.9  # dominated by the aligned key
