"""Module/Parameter registration, state dicts, train/eval modes."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential


class _Net(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 3, rng)
        self.fc2 = Linear(3, 1, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x)) * self.scale


class TestRegistration:
    def test_parameters_found_recursively(self, rng):
        net = _Net(rng)
        params = list(net.parameters())
        # fc1 (w, b) + fc2 (w, b) + scale
        assert len(params) == 5

    def test_named_parameters_have_dotted_paths(self, rng):
        names = dict(_Net(rng).named_parameters())
        assert "fc1.weight" in names
        assert "scale" in names

    def test_module_list_registration(self, rng):
        class Listy(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(2, 2, rng) for _ in range(3)]

        assert len(list(Listy().parameters())) == 6

    def test_shared_parameter_not_duplicated(self, rng):
        class Shared(Module):
            def __init__(self):
                super().__init__()
                layer = Linear(2, 2, rng)
                self.a = layer
                self.b = layer

        assert len(list(Shared().parameters())) == 2

    def test_num_parameters_counts_scalars(self, rng):
        net = _Net(rng)
        assert net.num_parameters() == 4 * 3 + 3 + 3 * 1 + 1 + 1


class TestStateDict:
    def test_roundtrip(self, rng):
        net = _Net(rng)
        state = net.state_dict()
        other = _Net(np.random.default_rng(99))
        other.load_state_dict(state)
        np.testing.assert_allclose(other.fc1.weight.data, net.fc1.weight.data)

    def test_state_dict_is_a_copy(self, rng):
        net = _Net(rng)
        state = net.state_dict()
        state["fc1.weight"][:] = 0.0
        assert not np.allclose(net.fc1.weight.data, 0.0)

    def test_load_rejects_missing_keys(self, rng):
        net = _Net(rng)
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_rejects_shape_mismatch(self, rng):
        net = _Net(rng)
        state = net.state_dict()
        state["scale"] = np.ones(2)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestModes:
    def test_train_eval_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng), Linear(2, 1, rng))
        net.eval()
        assert not net.training
        assert all(not m.training for m in net.steps)
        net.train()
        assert net.training

    def test_zero_grad_clears(self, rng):
        from repro.tensor import Tensor

        net = _Net(rng)
        out = net(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())
