"""LSTM and STGN recurrent layers."""

import numpy as np

from repro.nn import LSTM, LSTMCell, STGN, STGNCell
from repro.tensor import Tensor


class TestLSTMCell:
    def test_state_shapes(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, c = cell(
            Tensor(np.ones((3, 4))), Tensor(np.zeros((3, 6))),
            Tensor(np.zeros((3, 6))),
        )
        assert h.shape == (3, 6)
        assert c.shape == (3, 6)

    def test_hidden_bounded_by_tanh(self, rng):
        cell = LSTMCell(4, 6, rng)
        h, _ = cell(
            Tensor(np.ones((3, 4)) * 100),
            Tensor(np.zeros((3, 6))), Tensor(np.zeros((3, 6))),
        )
        assert np.all(np.abs(h.data) <= 1.0)


class TestLSTM:
    def test_outputs_and_last_hidden(self, rng):
        lstm = LSTM(4, 6, rng)
        outs, last = lstm(Tensor(np.random.default_rng(0).normal(size=(2, 5, 4))))
        assert outs.shape == (2, 5, 6)
        assert last.shape == (2, 6)
        np.testing.assert_allclose(outs.data[:, -1, :], last.data)

    def test_mask_freezes_state_after_sequence_end(self, rng):
        lstm = LSTM(4, 6, rng)
        x = np.random.default_rng(0).normal(size=(1, 5, 4))
        mask = np.array([[True, True, True, False, False]])
        _, last_masked = lstm(Tensor(x), mask=mask)
        _, last_short = lstm(Tensor(x[:, :3]), mask=None)
        np.testing.assert_allclose(last_masked.data, last_short.data, atol=1e-12)

    def test_gradients_flow_through_time(self, rng):
        lstm = LSTM(3, 4, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 6, 3)),
                   requires_grad=True)
        _, last = lstm(x)
        last.sum().backward()
        assert x.grad is not None
        # Early timesteps must receive gradient (no truncation).
        assert np.abs(x.grad[:, 0, :]).sum() > 0


class TestSTGN:
    def test_shapes(self, rng):
        stgn = STGN(4, 6, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(2, 5, 4)))
        dt = np.random.default_rng(1).random((2, 5))
        dd = np.random.default_rng(2).random((2, 5))
        outs, last = stgn(x, dt, dd)
        assert outs.shape == (2, 5, 6)
        assert last.shape == (2, 6)

    def test_intervals_modulate_state(self, rng):
        stgn = STGN(4, 6, rng)
        x = Tensor(np.random.default_rng(0).normal(size=(1, 4, 4)))
        zeros = np.zeros((1, 4))
        big = np.full((1, 4), 50.0)
        _, last_near = stgn(x, zeros, zeros)
        _, last_far = stgn(x, big, big)
        assert not np.allclose(last_near.data, last_far.data)

    def test_cell_gradients(self, rng):
        cell = STGNCell(3, 4, rng)
        h, c = cell(
            Tensor(np.ones((2, 3))), Tensor(np.zeros((2, 4))),
            Tensor(np.zeros((2, 4))), np.ones(2), np.ones(2),
        )
        h.sum().backward()
        assert cell.w_t.grad is not None
        assert cell.w_s.grad is not None
