"""Thin setup shim.

The execution environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs fail offline; this file lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
