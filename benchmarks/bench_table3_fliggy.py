"""Table III — method comparison on the (synthetic) Fliggy dataset.

Trains all eleven methods of the paper's Table III on one shared dataset
and reports AUC-O / AUC-D / HR@k / MRR@k.  The *shape* assertions encode
the paper's headline claims at reproduction scale:

- ODNET is the best method overall;
- the ODNET variant family orders ODNET > {STL+G, ODNET-G} > STL-G
  (joint learning and the HSG both contribute);
- MostPop is the worst method by a wide margin.

Absolute values differ from the paper (synthetic data, laptop CPU);
EXPERIMENTS.md records the deviations.  The benchmark times one full
ODNET training run under the paper's protocol.
"""

from repro.core import ODNETConfig, build_odnet
from repro.data import ODDataset, generate_fliggy_dataset
from repro.experiments import get_scale
from repro.train import Trainer

from conftest import BENCH_SCALE, emit

_METRICS = ("AUC-O", "AUC-D", "HR@1", "HR@5", "HR@10", "MRR@5", "MRR@10")


def test_table3_method_comparison(benchmark, capsys, results_dir,
                                  fliggy_suite):
    result = fliggy_suite.result
    emit(capsys, results_dir, "table3_fliggy_comparison",
         result.format_table(_METRICS))

    def hr5(name):
        return result.metric(name, "HR@5")

    # ODNET wins overall (the paper's headline).
    assert result.best_method("MRR@5") == "ODNET"
    assert hr5("ODNET") >= max(hr5(m) for m in
                               ("STP-UDGAT", "STOD-PPA", "LSTPM", "MostPop"))

    # Variant family ordering (Section V-C bullets 2-3).
    assert result.metric("ODNET", "MRR@5") > result.metric("STL+G", "MRR@5")
    assert result.metric("ODNET", "MRR@5") > result.metric("ODNET-G", "MRR@5")
    assert hr5("STL+G") >= hr5("STL-G")

    # MostPop is the worst method by a wide margin.
    assert all(hr5(m) > hr5("MostPop") + 0.1
               for m in ("GBDT", "LSTM", "STP-UDGAT", "ODNET"))

    # Benchmark: one full ODNET training run (paper protocol) at the
    # small scale, on a fresh dataset.
    scale = get_scale(BENCH_SCALE)
    dataset = ODDataset(generate_fliggy_dataset(scale.fliggy_config()))

    def train_once():
        model = build_odnet(dataset, ODNETConfig())
        Trainer(scale.train_config()).fit(model, dataset)
        return model

    benchmark.pedantic(train_once, rounds=1, iterations=1)
