"""Table V — training time and inference latency per method.

Re-reports the efficiency columns of the shared Table III run.  The
paper's shape claims encoded below:

- RNN-family methods (LSTM, STGN, LSTPM, STOD-PPA) train slower than the
  attention/graph-based ODNET family (sequential cells cannot batch over
  time);
- multi-task models infer faster than running the two single-task
  networks of their STL siblings (one network evaluation instead of two);
- GBDT trains fastest of the learned models.

The benchmark times ODNET's per-event inference (the paper's Table V
reports 16.3 ms for ODNET on production hardware).
"""

import numpy as np

from conftest import emit


def test_table5_efficiency(benchmark, capsys, results_dir, fliggy_suite):
    result = fliggy_suite.result

    header = f"{'Method':<12}{'Training (s)':>14}{'Inference (ms)':>16}"
    lines = [header, "-" * len(header)]
    for row in result.rows:
        lines.append(
            f"{row.name:<12}{row.train_seconds:>14.1f}"
            f"{row.inference_ms:>16.2f}"
        )
    emit(capsys, results_dir, "table5_efficiency", "\n".join(lines))

    def train_s(name):
        return result.row(name).train_seconds

    def infer_ms(name):
        return result.row(name).inference_ms

    # RNN methods are the slowest trainers (paper: 85-94 min vs 59-75).
    rnn_mean = np.mean([train_s(m) for m in
                        ("LSTM", "STGN", "LSTPM", "STOD-PPA")])
    family_mean = np.mean([train_s(m) for m in
                           ("STL-G", "STL+G", "ODNET-G", "ODNET")])
    assert family_mean < rnn_mean

    # MTL inference beats running both STL networks (paper: 14-16 ms vs
    # 22-23 ms).
    assert infer_ms("ODNET-G") < infer_ms("STL+G")
    assert infer_ms("ODNET") < infer_ms("STL+G") * 1.25

    # GBDT is the fastest learned model to train (paper: 30 min).
    assert train_s("GBDT") < min(
        train_s(m) for m in ("LSTM", "STGN", "LSTPM", "STOD-PPA",
                             "STL-G", "STL+G", "ODNET-G", "ODNET")
    )

    # Benchmark: ODNET per-event inference latency on the shared model.
    dataset = fliggy_suite.dataset
    model = fliggy_suite.models["ODNET"]
    tasks = dataset.ranking_tasks(num_candidates=30, max_tasks=10)
    batches = [dataset.batch_for_candidates(t.point, t.candidates)
               for t in tasks]

    def infer_all():
        for batch in batches:
            model.score_pairs(batch)

    benchmark.pedantic(infer_all, rounds=3, iterations=1)
