"""Shared benchmark fixtures.

The heavyweight part of the reproduction — training all eleven Table III
methods — is done once per session at ``COMPARISON_SCALE`` and shared by
the Table III, Table V, Figure 7 and ablation benches (the trained models
are kept, not just their metrics).  Cheaper benches (dataset statistics,
hyper-parameter sweeps, LBSN tables) run at ``BENCH_SCALE``.

Every bench writes its reproduction table to ``benchmarks/results/`` and
prints it live (bypassing pytest capture).
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass

import numpy as np
import pytest

from repro.data import ODDataset, generate_fliggy_dataset
from repro.experiments import ALL_METHODS, build_method, get_scale
from repro.experiments.comparison import ComparisonResult, MethodResult
from repro.obs import (
    MetricsRegistry,
    Tracer,
    set_registry,
    set_tracer,
    to_prometheus,
    write_jsonl,
)
from repro.train import evaluate_model, measure_inference_ms

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: scale for the cheap benches (statistics, sweeps, LBSN comparison).
BENCH_SCALE = "small"
#: scale for the full method comparison — the paper's orderings need the
#: larger sample count to emerge over count-feature baselines.
COMPARISON_SCALE = "medium"


@dataclass
class FliggySuite:
    """The shared comparison: dataset, trained models, and table rows."""

    scale_name: str
    dataset: ODDataset
    models: dict[str, object]
    result: ComparisonResult


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def obs_session():
    """Observe the whole bench session; dump the telemetry snapshot
    (JSONL + Prometheus text) alongside the reproduction tables."""
    registry, tracer = MetricsRegistry(), Tracer()
    previous_registry = set_registry(registry)
    previous_tracer = set_tracer(tracer)
    try:
        yield registry
    finally:
        set_registry(previous_registry)
        set_tracer(previous_tracer)
        RESULTS_DIR.mkdir(exist_ok=True)
        write_jsonl(RESULTS_DIR / "obs_snapshot.jsonl", registry, tracer)
        (RESULTS_DIR / "obs_snapshot.prom").write_text(to_prometheus(registry))


@pytest.fixture(scope="session")
def fliggy_suite() -> FliggySuite:
    """Train and evaluate every Table III method once (Tables III & V,
    Figure 7, ablations all reuse this)."""
    scale = get_scale(COMPARISON_SCALE)
    dataset = ODDataset(generate_fliggy_dataset(scale.fliggy_config()))
    tasks = dataset.ranking_tasks(
        num_candidates=scale.num_candidates,
        rng=np.random.default_rng(0),
        max_tasks=scale.max_tasks,
    )
    efficiency_tasks = tasks[:40]
    result = ComparisonResult(dataset_name="fliggy", scale=scale.name)
    models: dict[str, object] = {}
    for name in ALL_METHODS:
        model = build_method(name, dataset)
        train_seconds = model.fit(dataset, scale.train_config())
        metrics = evaluate_model(model, dataset, tasks)
        inference_ms = measure_inference_ms(model, dataset, efficiency_tasks)
        result.rows.append(
            MethodResult(
                name=name,
                metrics=metrics,
                train_seconds=train_seconds,
                inference_ms=inference_ms,
            )
        )
        models[name] = model
    return FliggySuite(
        scale_name=scale.name, dataset=dataset, models=models, result=result
    )


def emit(capsys, results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a reproduction table live and persist it to results/."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    with capsys.disabled():
        print(f"\n===== {name} =====")
        print(text)
