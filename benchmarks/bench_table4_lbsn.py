"""Table IV — single-task methods on the LBSN datasets.

Runs the nine single-task methods on synthetic Foursquare and Gowalla
check-in data (next-POI ranking; ODNET/ODNET-G are excluded exactly as in
the paper because they require origin labels).  Shape assertions: deep
methods beat MostPop everywhere, and the graph-based STL+G beats its
graph-less STL-G sibling on at least one dataset (the paper's claim that
HSGC-equipped models lead Table IV).

The benchmark times the full Foursquare comparison.
"""

from repro.experiments import LBSN_METHODS, run_lbsn_comparison

from conftest import BENCH_SCALE, emit

_METRICS = ("AUC", "HR@1", "HR@5", "HR@10", "MRR@5", "MRR@10")


def test_table4_lbsn_comparison(benchmark, capsys, results_dir):
    foursquare = benchmark.pedantic(
        run_lbsn_comparison,
        kwargs={"dataset_name": "foursquare", "scale": BENCH_SCALE},
        rounds=1, iterations=1,
    )
    gowalla = run_lbsn_comparison(dataset_name="gowalla", scale=BENCH_SCALE)

    text = (
        "Foursquare\n" + foursquare.format_table(_METRICS)
        + "\n\nGowalla\n" + gowalla.format_table(_METRICS)
    )
    emit(capsys, results_dir, "table4_lbsn_comparison", text)

    for result in (foursquare, gowalla):
        assert set(r.name for r in result.rows) == set(LBSN_METHODS)
        mostpop = result.metric("MostPop", "HR@5")
        neural = ("LSTM", "STGN", "LSTPM", "STOD-PPA", "STP-UDGAT", "STL+G")
        above = sum(
            result.metric(method, "HR@5") > mostpop for method in neural
        )
        # Representation learning beats raw popularity (the paper's broad
        # claim); at reproduction scale we require a clear majority rather
        # than a clean sweep.
        assert above >= len(neural) - 1, result.format_table(("HR@5",))
        # The HSGC-equipped variant leads the popularity baseline outright.
        assert result.metric("STL+G", "HR@5") > mostpop
        # GBDT cannot see the latent venue categories; it only needs to
        # stay in the same band as MostPop, not beat the neural pack.
        assert result.metric("GBDT", "HR@5") > mostpop - 0.05

    # HSGC helps on LBSN too (at least one dataset at this scale).
    gains = [
        result.metric("STL+G", "MRR@5") - result.metric("STL-G", "MRR@5")
        for result in (foursquare, gowalla)
    ]
    assert max(gains) > -0.02
