"""Figure 6(b) — ODNET accuracy and training time vs exploration depth K.

Sweeps Algorithm 1's depth over {1, 2, 3, 4}.  The paper reports training
times of 55/73/94/135 minutes for K=1..4 — strictly increasing — and an
accuracy knee at K=2 (K>2 gives "no marked marginal returns").

Shape assertions here: training time strictly increases with K, and the
K=2 setting is within noise of the best accuracy (the knee).

The benchmark times the whole sweep.
"""

from repro.analysis import ascii_line_chart, write_csv
from repro.experiments import run_depth_sweep

from conftest import BENCH_SCALE, emit


def test_fig6b_depth_sweep(benchmark, capsys, results_dir):
    result = benchmark.pedantic(
        run_depth_sweep,
        kwargs={"scale": BENCH_SCALE, "depths": (1, 2, 3, 4)},
        rounds=1, iterations=1,
    )
    series = result.series()
    chart = ascii_line_chart(
        series["depth"],
        {"HR@5": series["HR@5"], "MRR@5": series["MRR@5"]},
        title="Figure 6(b): ODNET accuracy vs exploration depth K",
    )
    time_chart = ascii_line_chart(
        series["depth"],
        {"train_seconds": series["train_seconds"]},
        title="Figure 6(b): training time vs K",
        height=8,
    )
    write_csv(results_dir / "fig6b_depth_sweep", series)
    emit(capsys, results_dir, "fig6b_depth_sweep",
         result.format_table() + "\n\n" + chart + "\n\n" + time_chart)

    by_depth = {p.value: p for p in result.points}
    assert set(by_depth) == {1, 2, 3, 4}

    # Training cost grows with K (paper: 55 -> 73 -> 94 -> 135 minutes).
    times = [by_depth[k].train_seconds for k in (1, 2, 3, 4)]
    assert times == sorted(times)

    # K=2 sits at (or within noise of) the accuracy knee.
    best_hr5 = max(p.hr5 for p in result.points)
    assert by_depth[2].hr5 >= best_hr5 - 0.05
