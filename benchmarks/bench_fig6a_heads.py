"""Figure 6(a) — ODNET accuracy vs number of attention heads.

Sweeps the PEC multi-head count over {1, 2, 4, 8} and reports HR@5 /
MRR@5.  The paper peaks at 4 heads and degrades at 8; at reproduction
scale we assert the weaker, noise-tolerant shape: some multi-head setting
beats 1 head, and 8 heads is not the unique optimum.

The benchmark times the whole sweep.
"""

from repro.analysis import ascii_line_chart, write_csv
from repro.experiments import run_heads_sweep

from conftest import BENCH_SCALE, emit


def test_fig6a_heads_sweep(benchmark, capsys, results_dir):
    result = benchmark.pedantic(
        run_heads_sweep,
        kwargs={"scale": BENCH_SCALE, "heads": (1, 2, 4, 8)},
        rounds=1, iterations=1,
    )
    series = result.series()
    chart = ascii_line_chart(
        series["num_heads"],
        {"HR@5": series["HR@5"], "MRR@5": series["MRR@5"]},
        title="Figure 6(a): ODNET accuracy vs attention heads",
    )
    write_csv(results_dir / "fig6a_heads_sweep", series)
    emit(capsys, results_dir, "fig6a_heads_sweep",
         result.format_table() + "\n\n" + chart)

    by_heads = {p.value: p for p in result.points}
    assert set(by_heads) == {1, 2, 4, 8}
    # Multi-head attention helps over a single head (paper's premise).
    assert max(by_heads[h].hr5 for h in (2, 4)) >= by_heads[1].hr5 - 0.02
    # The curve is not monotonically increasing to 8 (paper: 4 is the peak).
    best = result.best("mrr5").value
    assert best in (1, 2, 4) or by_heads[8].mrr5 - by_heads[4].mrr5 < 0.03
