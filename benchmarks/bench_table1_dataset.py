"""Table I — statistics of the (synthetic) Fliggy dataset.

Regenerates the paper's dataset-statistics table: sample counts by kind
(1 positive : 4 partially-negative : 2 negative per decision point), user
counts, and origin/destination city counts.  The benchmark times dataset
generation itself (the behavioural simulator).
"""

from repro.data import generate_fliggy_dataset
from repro.experiments import get_scale

from conftest import BENCH_SCALE, emit


def _format_table1(stats: dict) -> str:
    rows = [
        ("# of samples", "training_samples", "testing_samples"),
        ("# of (O+, D+) samples", "training_pos", "testing_pos"),
        ("# of partial negative samples", "training_partial_neg",
         "testing_partial_neg"),
        ("# of (O-, D-) samples", "training_neg", "testing_neg"),
        ("# of users", "training_users", "testing_users"),
    ]
    header = f"{'Property':<32}{'Training':>12}{'Testing':>12}"
    lines = [header, "-" * len(header)]
    for label, train_key, test_key in rows:
        lines.append(
            f"{label:<32}{stats[train_key]:>12}{stats[test_key]:>12}"
        )
    lines.append(f"{'# of origin cities':<32}{stats['origin_cities']:>12}"
                 f"{stats['origin_cities']:>12}")
    lines.append(f"{'# of destination cities':<32}"
                 f"{stats['destination_cities']:>12}"
                 f"{stats['destination_cities']:>12}")
    return "\n".join(lines)


def test_table1_dataset_statistics(benchmark, capsys, results_dir):
    scale = get_scale(BENCH_SCALE)
    config = scale.fliggy_config()

    dataset = benchmark.pedantic(
        generate_fliggy_dataset, args=(config,), rounds=1, iterations=1
    )
    stats = dataset.statistics()
    emit(capsys, results_dir, "table1_fliggy_statistics",
         _format_table1(stats))

    # Table I structure: 1 : 4 : 2 sample mix, both splits.
    assert stats["training_partial_neg"] == 4 * stats["training_pos"]
    assert stats["training_neg"] == 2 * stats["training_pos"]
    assert stats["testing_partial_neg"] == 4 * stats["testing_pos"]
    assert stats["testing_neg"] == 2 * stats["testing_pos"]
    assert stats["origin_cities"] == stats["destination_cities"]
