"""Ablation bench (beyond the paper's tables; Section V-C's decomposition).

Quantifies the contribution of each ODNET design choice called out in
DESIGN.md, reusing the shared suite's trained variants where possible:

- the HSGC graph exploration (ODNET vs ODNET-G, STL+G vs STL-G);
- the O&D joint learning head (ODNET vs STL+G);
- the Eq. 2 spatial weights in the city attention (fresh training of a
  copy with plain dot-product attention);
- the pair-level unity features (the trained ODNET re-scored with the
  pair features zeroed).

The benchmark times the extra (non-reused) training.
"""

from dataclasses import replace

import numpy as np

from repro.core import ODNETConfig, build_odnet
from repro.metrics import evaluate_rankings, rank_of_true
from repro.train import evaluate_ranking

from conftest import emit


def _zeroed_pair_feature_metrics(model, dataset, tasks):
    ranks = []
    for task in tasks:
        batch = dataset.batch_for_candidates(task.point, task.candidates)
        batch.pair_features = np.zeros_like(batch.pair_features)
        scores = model.score_pairs(batch)
        ranks.append(rank_of_true(scores, task.true_index))
    return evaluate_rankings(np.asarray(ranks), ks=(5,))


def test_ablation_components(benchmark, capsys, results_dir, fliggy_suite):
    dataset = fliggy_suite.dataset
    tasks = dataset.ranking_tasks(
        num_candidates=50, rng=np.random.default_rng(1), max_tasks=400
    )

    suite = {}
    for label, name in (
        ("ODNET (full)", "ODNET"),
        ("  - HSGC (ODNET-G)", "ODNET-G"),
        ("  - joint learning (STL+G)", "STL+G"),
        ("  - both (STL-G)", "STL-G"),
    ):
        suite[label] = evaluate_ranking(
            fliggy_suite.models[name], dataset, tasks, (5,)
        )
    suite["  - pair features (scored w/o)"] = _zeroed_pair_feature_metrics(
        fliggy_suite.models["ODNET"], dataset, tasks
    )

    # The one configuration not in the registry: no Eq. 2 spatial weights.
    def train_no_spatial():
        from repro.train import Trainer
        from repro.experiments import get_scale
        from conftest import COMPARISON_SCALE

        scale = get_scale(COMPARISON_SCALE)
        model = build_odnet(
            dataset, replace(ODNETConfig(), use_spatial_weights=False)
        )
        Trainer(scale.train_config()).fit(model, dataset)
        return model

    no_spatial = benchmark.pedantic(train_no_spatial, rounds=1, iterations=1)
    suite["  - spatial weights (Eq. 2)"] = evaluate_ranking(
        no_spatial, dataset, tasks, (5,)
    )

    header = f"{'Configuration':<36}{'HR@5':>8}{'MRR@5':>8}"
    lines = [header, "-" * len(header)]
    for name, metrics in suite.items():
        lines.append(f"{name:<36}{metrics['HR@5']:>8.4f}"
                     f"{metrics['MRR@5']:>8.4f}")
    emit(capsys, results_dir, "ablation_components", "\n".join(lines))

    full = suite["ODNET (full)"]["MRR@5"]
    # Removing the unity features must hurt (the headline mechanism).
    assert full > suite["  - pair features (scored w/o)"]["MRR@5"]
    # Removing everything must hurt.
    assert full > suite["  - both (STL-G)"]["MRR@5"]
    # Single-component removals should not *improve* the model beyond noise.
    assert full >= suite["  - HSGC (ODNET-G)"]["MRR@5"] - 0.02
    assert full >= suite["  - joint learning (STL+G)"]["MRR@5"] - 0.02
    assert full >= suite["  - spatial weights (Eq. 2)"]["MRR@5"] - 0.03
