"""Table II — statistics of the (synthetic) Foursquare and Gowalla datasets.

The paper reports users / POIs / check-in records for the two LBSN
datasets; Gowalla has more POIs and more check-ins than Foursquare, a
relationship the presets preserve.  The benchmark times LBSN generation.
"""

from repro.data import generate_lbsn_dataset
from repro.experiments import get_scale

from conftest import BENCH_SCALE, emit


def _checkin_count(dataset) -> int:
    # Each stored booking is one check-in transition; +1 initial check-in
    # per user recovers the raw check-in count.
    transitions = sum(len(b) for b in dataset.bookings_by_user.values())
    return transitions + len(dataset.bookings_by_user)


def test_table2_lbsn_statistics(benchmark, capsys, results_dir):
    scale = get_scale(BENCH_SCALE)

    def build_both():
        foursquare = generate_lbsn_dataset(scale.lbsn_config("foursquare"))
        gowalla = generate_lbsn_dataset(scale.lbsn_config("gowalla"))
        return foursquare, gowalla

    foursquare, gowalla = benchmark.pedantic(build_both, rounds=1,
                                             iterations=1)

    header = f"{'Dataset':<12}{'# users':>10}{'# POIs':>10}{'# check-ins':>14}"
    lines = [header, "-" * len(header)]
    stats = {}
    for name, dataset in (("Foursquare", foursquare), ("Gowalla", gowalla)):
        stats[name] = (
            dataset.num_users, dataset.num_cities, _checkin_count(dataset)
        )
        lines.append(
            f"{name:<12}{stats[name][0]:>10}{stats[name][1]:>10}"
            f"{stats[name][2]:>14}"
        )
    emit(capsys, results_dir, "table2_lbsn_statistics", "\n".join(lines))

    # Paper's Table II relationships: Gowalla has more POIs & check-ins.
    assert stats["Gowalla"][1] > stats["Foursquare"][1]
    assert stats["Gowalla"][2] > stats["Foursquare"][2]
