"""Figure 7 — simulated one-week online A/B test (daily CTR per method).

Reuses the trained models of the shared comparison suite, partitions
simulated traffic evenly across the paper's eight deployed methods
(the "revised scheduling engine"), and reports daily CTR per Eq. 14.

Shape assertions: ODNET has the best mean CTR, beats the SOTA methods
(STP-UDGAT / STOD-PPA) by a positive margin, and beats MostPop by a wide
one (paper: +11.25% and +17.3% respectively).

The benchmark times the traffic simulation itself (training excluded).
"""

from repro.analysis import abtest_to_rows, ascii_bar_chart, write_csv
from repro.experiments import ABTEST_METHODS
from repro.experiments.abtest import format_abtest
from repro.serving import ABTestConfig, ABTestSimulator

from conftest import emit


def test_fig7_abtest(benchmark, capsys, results_dir, fliggy_suite):
    dataset = fliggy_suite.dataset
    models = {name: fliggy_suite.models[name] for name in ABTEST_METHODS}

    config = ABTestConfig(days=7, users_per_day_per_method=30, seed=0)
    simulator = ABTestSimulator(dataset, config)
    tasks = dataset.ranking_tasks(num_candidates=50, max_tasks=400)

    result = benchmark.pedantic(
        simulator.run, args=(models,), kwargs={"tasks": tasks},
        rounds=1, iterations=1,
    )

    write_csv(results_dir / "fig7_abtest_ctr", abtest_to_rows(result))
    summary = result.summary()
    chart = ascii_bar_chart(
        list(summary), list(summary.values()),
        title="Figure 7: mean CTR per method",
    )
    text = format_abtest(result) + "\n\n" + chart + (
        f"\n\nODNET lift vs STP-UDGAT: "
        f"{result.improvement('ODNET', 'STP-UDGAT'):+.1%}"
        f"\nODNET lift vs STOD-PPA : "
        f"{result.improvement('ODNET', 'STOD-PPA'):+.1%}"
        f"\nODNET lift vs MostPop  : "
        f"{result.improvement('ODNET', 'MostPop'):+.1%}"
    )
    emit(capsys, results_dir, "fig7_abtest_ctr", text)

    best = max(summary, key=summary.get)
    assert best == "ODNET", summary
    assert result.improvement("ODNET", "STP-UDGAT") > 0
    assert result.improvement("ODNET", "STOD-PPA") > 0
    assert result.improvement("ODNET", "MostPop") > 0.10
