"""Serving fast path — frozen-graph embedding cache vs the cold path.

Times ``score_pairs`` through a frozen :class:`repro.perf.InferenceSession`
(HSGC node-embedding tables materialised once, invalidated by the model's
parameter version) against the uncached path that re-propagates the
hierarchical graph on every call.  The cached path must return bit-identical
scores — it reuses the exact tensors ``node_embeddings()`` produces — while
skipping the propagation that dominates per-request latency.

The committed end-to-end numbers live in ``BENCH_serving.json`` (written by
``python -m repro bench``); this bench keeps the core claim — cache wins and
stays exact — under pytest-benchmark alongside the paper tables.
"""

import numpy as np

from repro.core import ODNETConfig, build_odnet
from repro.data import ODDataset, generate_fliggy_dataset
from repro.experiments import get_scale
from repro.serving import CandidateRecall

from conftest import BENCH_SCALE, emit


def _serving_batch(dataset: ODDataset):
    recall = CandidateRecall(dataset.source.world, dataset.route_popularity)
    point = dataset.source.test_points[0]
    return dataset.batch_for_candidates(
        point, recall.candidate_pairs(point.history)
    )


def test_fast_path_cached_scoring(benchmark, capsys, results_dir):
    scale = get_scale(BENCH_SCALE)
    dataset = ODDataset(generate_fliggy_dataset(scale.fliggy_config()))
    model = build_odnet(dataset, ODNETConfig())
    batch = _serving_batch(dataset)

    uncached = np.asarray(model.score_pairs(batch))
    session = model.freeze()
    session.score_pairs(batch)  # miss: materialise the tables once

    cached = np.asarray(
        benchmark.pedantic(
            session.score_pairs, args=(batch,), rounds=5, iterations=2
        )
    )

    # The cache serves the same tensors the cold path computes.
    np.testing.assert_array_equal(uncached, cached)
    # Every benchmarked call was a hit — the tables were built exactly once.
    assert session.misses == 1 and session.hits >= 10

    import time

    start = time.perf_counter()
    for _ in range(5):
        model.score_pairs(batch)
    cold_ms = (time.perf_counter() - start) / 5 * 1e3

    start = time.perf_counter()
    for _ in range(5):
        session.score_pairs(batch)
    warm_ms = (time.perf_counter() - start) / 5 * 1e3

    header = f"{'Path':<24}{'per call (ms)':>16}"
    lines = [header, "-" * len(header),
             f"{'uncached (cold graph)':<24}{cold_ms:>16.2f}",
             f"{'frozen session (warm)':<24}{warm_ms:>16.2f}",
             f"{'speedup':<24}{cold_ms / warm_ms:>15.2f}x"]
    emit(capsys, results_dir, "fast_path_cached_scoring", "\n".join(lines))

    # The frozen session skips HSGC propagation — the dominant cost.
    assert warm_ms < cold_ms
